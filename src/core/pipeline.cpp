#include "core/pipeline.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

#include "clustering/metrics.hpp"
#include "clustering/selectors.hpp"
#include "core/feature_compressor.hpp"
#include "core/group_constructor.hpp"
#include "core/simulation.hpp"
#include "nn/serialize.hpp"
#include "predict/channel_predictor.hpp"
#include "twin/store.hpp"
#include "util/error.hpp"

namespace dtmsv::core {

// ------------------------------------------------------------ TwinSnapshot

twin::WindowBatch TwinSnapshot::feature_windows() const {
  DTMSV_EXPECTS_MSG(twins != nullptr && arena != nullptr,
                    "TwinSnapshot: feature_windows() needs a twin store and the "
                    "Simulation-owned arena");
  return twins->columns().feature_windows({now, window_s, timesteps, scaling},
                                          *arena, force_full);
}

twin::SummaryBatch TwinSnapshot::summary_features() const {
  DTMSV_EXPECTS_MSG(twins != nullptr && arena != nullptr,
                    "TwinSnapshot: summary_features() needs a twin store and the "
                    "Simulation-owned arena");
  return twins->columns().summary_features({now, window_s, scaling}, *arena,
                                           force_full);
}

clustering::Points to_points(const twin::SummaryBatch& batch) {
  clustering::Points points(batch.size(), batch.dim());
  std::copy(batch.data(), batch.data() + batch.size() * batch.dim(), points.data());
  return points;
}

namespace {

// ---------------------------------------------------- built-in FeatureStages

/// The paper's stage: 1D-CNN autoencoder trained online; the bottleneck
/// embedding is the user feature.
class CnnFeatureStage final : public FeatureStage {
 public:
  CnnFeatureStage(const SchemeConfig& config, util::Rng& rng) {
    CompressorConfig cc = config.compressor;
    cc.channels = twin::UserDigitalTwin::kFeatureChannels;
    cc.timesteps = config.feature_timesteps;
    compressor_ = std::make_unique<FeatureCompressor>(cc, rng.fork(6).next());
  }

  FeatureOutput extract(const TwinSnapshot& snapshot) override {
    const twin::WindowBatch windows = snapshot.feature_windows();
    FeatureOutput out;
    out.reconstruction_loss = compressor_->fit(windows);
    out.points = compressor_->embed(windows);
    return out;
  }

  std::string name() const override { return "cnn"; }
  bool has_learned_state() const override { return true; }
  void save_state(std::ostream& os) const override {
    nn::save_parameters(compressor_->encoder(), os);
    nn::save_parameters(compressor_->decoder(), os);
  }
  void load_state(std::istream& is) override {
    nn::load_parameters(compressor_->encoder(), is);
    nn::load_parameters(compressor_->decoder(), is);
  }

 private:
  std::unique_ptr<FeatureCompressor> compressor_;
};

/// Ablation: the flattened raw window, no compression.
class RawWindowFeatureStage final : public FeatureStage {
 public:
  FeatureOutput extract(const TwinSnapshot& snapshot) override {
    const twin::WindowBatch windows = snapshot.feature_windows();
    FeatureOutput out;
    if (windows.empty()) {
      return out;
    }
    clustering::Points points(windows.size(), windows.window_size());
    double* rows = points.data();
    const float* flat = windows.data();
    const std::size_t total = windows.size() * windows.window_size();
    for (std::size_t i = 0; i < total; ++i) {
      rows[i] = static_cast<double>(flat[i]);
    }
    out.points = std::move(points);
    return out;
  }
  std::string name() const override { return "raw"; }
};

/// Ablation: hand-rolled summary statistics per user.
class SummaryStatsFeatureStage final : public FeatureStage {
 public:
  FeatureOutput extract(const TwinSnapshot& snapshot) override {
    FeatureOutput out;
    out.points = to_points(snapshot.summary_features());
    return out;
  }
  std::string name() const override { return "summary"; }
};

// --------------------------------------------------- built-in GroupingStages

/// The paper's stage: DDQN-empowered K selection + K-means++ clustering with
/// online learning across reservation intervals.
class DdqnGroupingStage final : public GroupingStage {
 public:
  DdqnGroupingStage(const SchemeConfig& config, util::Rng& rng)
      : constructor_(std::make_unique<GroupConstructor>(config.grouping,
                                                        rng.fork(7).next())) {}

  GroupingOutcome group(const clustering::Points& features,
                        util::Rng& rng) override {
    const GroupingDecision decision = constructor_->construct(features, rng);
    GroupingOutcome out;
    out.k = decision.k;
    out.assignment = decision.assignment;
    out.silhouette = decision.silhouette;
    out.epsilon = decision.epsilon;
    return out;
  }

  void report_outcome(double prediction_error) override {
    constructor_->report_outcome(prediction_error);
  }

  std::string name() const override { return "ddqn"; }
  bool has_learned_state() const override { return true; }
  void save_state(std::ostream& os) const override {
    nn::save_parameters(constructor_->agent().online_network(), os);
  }
  void load_state(std::istream& is) override {
    nn::load_parameters(constructor_->agent().online_network(), is);
    nn::copy_parameters(constructor_->agent().online_network(),
                        constructor_->agent().target_network());
  }

 private:
  std::unique_ptr<GroupConstructor> constructor_;
};

/// Baseline stages: a clustering::KSelector chooses K, then K-means++ and a
/// sampled silhouette — the ablation arms of ABL-CLU behind one adapter.
class SelectorGroupingStage final : public GroupingStage {
 public:
  SelectorGroupingStage(std::string key,
                        std::unique_ptr<clustering::KSelector> selector,
                        const SchemeConfig& config)
      : key_(std::move(key)),
        selector_(std::move(selector)),
        kmeans_(config.grouping.kmeans),
        silhouette_sample_cap_(config.grouping.silhouette_sample_cap) {}

  GroupingOutcome group(const clustering::Points& features,
                        util::Rng& rng) override {
    GroupingOutcome out;
    std::size_t k = selector_->select_k(features, rng);
    k = std::clamp<std::size_t>(k, 1, features.size());
    const auto result = clustering::k_means(features, k, rng, kmeans_);
    out.k = k;
    out.assignment = result.assignment;
    out.silhouette = clustering::silhouette_sampled(
        features, out.assignment, silhouette_sample_cap_, rng);
    return out;
  }

  std::string name() const override { return key_; }

 private:
  std::string key_;
  std::unique_ptr<clustering::KSelector> selector_;
  clustering::KMeansOptions kmeans_;
  std::size_t silhouette_sample_cap_;
};

// ----------------------------------------------------- built-in DemandStages

/// The paper's stage: joint min-over-members channel forecast (harmonic
/// mean, unbiased for the multicast accounting) feeding the rung-mixture
/// demand model.
class JointDemandStage final : public DemandStage {
 public:
  explicit JointDemandStage(const SchemeConfig& config)
      : window_s_(config.feature_window_s), demand_(config.demand) {}

  GroupDemandForecast predict(const GroupDemandContext& context) override {
    const predict::GroupChannelForecast forecast = predict::forecast_group_channel(
        *context.members, context.now, window_s_, demand_.efficiency_floor);
    GroupDemandForecast out;
    out.efficiency = forecast.efficiency;
    out.demand = predict::predict_group_demand(
        context.members->size(), *context.preference, *context.swiping, forecast,
        *context.playlist_per_category, *context.content, demand_);
    return out;
  }

  std::string name() const override { return "joint"; }

 private:
  double window_s_;
  predict::DemandModelConfig demand_;
};

/// Ablation: min over per-member forecasts from one EfficiencyPredictor
/// (optimistically biased — min(E[X_i]) >= E[min X_i]).
class PerMemberDemandStage final : public DemandStage {
 public:
  PerMemberDemandStage(std::string key,
                       std::unique_ptr<predict::EfficiencyPredictor> predictor,
                       const SchemeConfig& config)
      : key_(std::move(key)),
        predictor_(std::move(predictor)),
        window_s_(config.feature_window_s),
        demand_(config.demand) {}

  GroupDemandForecast predict(const GroupDemandContext& context) override {
    predict::GroupChannelForecast forecast;
    forecast.efficiency = predict::predict_group_efficiency(
        *context.members, *predictor_, context.now, window_s_,
        demand_.efficiency_floor);
    forecast.min_series = {forecast.efficiency};
    GroupDemandForecast out;
    out.efficiency = forecast.efficiency;
    out.demand = predict::predict_group_demand(
        context.members->size(), *context.preference, *context.swiping, forecast,
        *context.playlist_per_category, *context.content, demand_);
    return out;
  }

  std::string name() const override { return key_; }

 private:
  std::string key_;
  std::unique_ptr<predict::EfficiencyPredictor> predictor_;
  double window_s_;
  predict::DemandModelConfig demand_;
};

std::string known_keys_hint(const std::vector<std::string>& keys) {
  std::string hint = " (known keys:";
  for (const auto& k : keys) {
    hint += ' ';
    hint += k;
  }
  hint += ')';
  return hint;
}

}  // namespace

// ----------------------------------------------------------------- registry

struct StageRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, FeatureFactory> feature;
  std::map<std::string, GroupingFactory> grouping;
  std::map<std::string, DemandFactory> demand;

  template <typename Map, typename Factory>
  void add(Map& map, const char* kind, const std::string& key, Factory factory) {
    DTMSV_EXPECTS_MSG(!key.empty(), "StageRegistry: empty stage key");
    const std::scoped_lock lock(mutex);
    if (!map.emplace(key, std::move(factory)).second) {
      throw util::RuntimeError(std::string("StageRegistry: duplicate ") + kind +
                               " stage key \"" + key + "\"");
    }
  }

  template <typename Map>
  const typename Map::mapped_type& find(const Map& map, const char* kind,
                                        const std::string& key) const {
    const std::scoped_lock lock(mutex);
    const auto it = map.find(key);
    if (it == map.end()) {
      throw util::RuntimeError(std::string("StageRegistry: unknown ") + kind +
                               " stage key \"" + key + "\"" +
                               known_keys_hint(keys_of(map)));
    }
    return it->second;
  }

  template <typename Map>
  static std::vector<std::string> keys_of(const Map& map) {
    std::vector<std::string> keys;
    keys.reserve(map.size());
    for (const auto& [key, factory] : map) {
      keys.push_back(key);
    }
    return keys;  // std::map iteration is already sorted
  }
};

StageRegistry::StageRegistry() : impl_(std::make_unique<Impl>()) {}
StageRegistry::~StageRegistry() = default;

StageRegistry& StageRegistry::instance() {
  static StageRegistry& registry = []() -> StageRegistry& {
    static StageRegistry r;
    r.register_feature("cnn", [](const SchemeConfig& config, util::Rng& rng) {
      return std::make_unique<CnnFeatureStage>(config, rng);
    });
    r.register_feature("raw", [](const SchemeConfig&, util::Rng&) {
      return std::make_unique<RawWindowFeatureStage>();
    });
    r.register_feature("summary", [](const SchemeConfig&, util::Rng&) {
      return std::make_unique<SummaryStatsFeatureStage>();
    });

    r.register_grouping("ddqn", [](const SchemeConfig& config, util::Rng& rng) {
      return std::make_unique<DdqnGroupingStage>(config, rng);
    });
    r.register_grouping("fixed", [](const SchemeConfig& config, util::Rng&) {
      return std::make_unique<SelectorGroupingStage>(
          "fixed", std::make_unique<clustering::FixedKSelector>(config.fixed_k),
          config);
    });
    r.register_grouping("elbow", [](const SchemeConfig& config, util::Rng&) {
      return std::make_unique<SelectorGroupingStage>(
          "elbow",
          std::make_unique<clustering::ElbowKSelector>(config.grouping.k_min,
                                                       config.grouping.k_max),
          config);
    });
    r.register_grouping("random", [](const SchemeConfig& config, util::Rng&) {
      return std::make_unique<SelectorGroupingStage>(
          "random",
          std::make_unique<clustering::RandomKSelector>(config.grouping.k_min,
                                                        config.grouping.k_max),
          config);
    });
    r.register_grouping("silhouette", [](const SchemeConfig& config, util::Rng&) {
      return std::make_unique<SelectorGroupingStage>(
          "silhouette",
          std::make_unique<clustering::SilhouetteSweepSelector>(
              config.grouping.k_min, config.grouping.k_max),
          config);
    });

    r.register_demand("joint", [](const SchemeConfig& config, util::Rng&) {
      return std::make_unique<JointDemandStage>(config);
    });
    r.register_demand("last_value", [](const SchemeConfig& config, util::Rng&) {
      return std::make_unique<PerMemberDemandStage>(
          "last_value", std::make_unique<predict::LastValuePredictor>(), config);
    });
    r.register_demand("ewma", [](const SchemeConfig& config, util::Rng&) {
      return std::make_unique<PerMemberDemandStage>(
          "ewma", std::make_unique<predict::EwmaPredictor>(), config);
    });
    r.register_demand("linear_trend", [](const SchemeConfig& config, util::Rng&) {
      return std::make_unique<PerMemberDemandStage>(
          "linear_trend", std::make_unique<predict::LinearTrendPredictor>(),
          config);
    });
    r.register_demand("mean", [](const SchemeConfig& config, util::Rng&) {
      return std::make_unique<PerMemberDemandStage>(
          "mean", std::make_unique<predict::MeanPredictor>(), config);
    });
    return r;
  }();
  return registry;
}

void StageRegistry::register_feature(const std::string& key, FeatureFactory factory) {
  impl_->add(impl_->feature, "feature", key, std::move(factory));
}
void StageRegistry::register_grouping(const std::string& key, GroupingFactory factory) {
  impl_->add(impl_->grouping, "grouping", key, std::move(factory));
}
void StageRegistry::register_demand(const std::string& key, DemandFactory factory) {
  impl_->add(impl_->demand, "demand", key, std::move(factory));
}

bool StageRegistry::has_feature(const std::string& key) const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->feature.count(key) > 0;
}
bool StageRegistry::has_grouping(const std::string& key) const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->grouping.count(key) > 0;
}
bool StageRegistry::has_demand(const std::string& key) const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->demand.count(key) > 0;
}

std::unique_ptr<FeatureStage> StageRegistry::make_feature(const std::string& key,
                                                          const SchemeConfig& config,
                                                          util::Rng& rng) const {
  return impl_->find(impl_->feature, "feature", key)(config, rng);
}
std::unique_ptr<GroupingStage> StageRegistry::make_grouping(const std::string& key,
                                                            const SchemeConfig& config,
                                                            util::Rng& rng) const {
  return impl_->find(impl_->grouping, "grouping", key)(config, rng);
}
std::unique_ptr<DemandStage> StageRegistry::make_demand(const std::string& key,
                                                        const SchemeConfig& config,
                                                        util::Rng& rng) const {
  return impl_->find(impl_->demand, "demand", key)(config, rng);
}

std::vector<std::string> StageRegistry::feature_keys() const {
  const std::scoped_lock lock(impl_->mutex);
  return Impl::keys_of(impl_->feature);
}
std::vector<std::string> StageRegistry::grouping_keys() const {
  const std::scoped_lock lock(impl_->mutex);
  return Impl::keys_of(impl_->grouping);
}
std::vector<std::string> StageRegistry::demand_keys() const {
  const std::scoped_lock lock(impl_->mutex);
  return Impl::keys_of(impl_->demand);
}

// ----------------------------------------------------------- key resolution

std::string feature_stage_key(const SchemeConfig& config) {
  DTMSV_EXPECTS_MSG(!config.feature_stage.empty(),
                    "SchemeConfig::feature_stage must name a registry key");
  return config.feature_stage;
}

std::string grouping_stage_key(const SchemeConfig& config) {
  DTMSV_EXPECTS_MSG(!config.grouping_stage.empty(),
                    "SchemeConfig::grouping_stage must name a registry key");
  return config.grouping_stage;
}

std::string demand_stage_key(const SchemeConfig& config) {
  DTMSV_EXPECTS_MSG(!config.demand_stage.empty(),
                    "SchemeConfig::demand_stage must name a registry key");
  return config.demand_stage;
}

}  // namespace dtmsv::core
