// Bounded ingestion queue for the always-on serving mode (core/serve.hpp).
//
// Twin status reports arrive as TwinEvents and wait here until the serve
// loop drains them into the columnar store at the next interval boundary.
// The queue is the backpressure point: capacity is fixed up front, and when
// a producer outruns the drain the *oldest* queued event is shed to admit
// the newcomer (freshest-data-wins — a stale channel sample is worth less
// to the next prediction than the one that just arrived), with every shed
// counted so the loop can surface exact drop totals through the sink.
//
// Modelled on the event-queue idiom of arbor's time_sequence/generic_event
// headers: producers push in nondecreasing time order, the consumer pops
// everything up to a time horizon ("marks until t") per interval. Plain
// single-threaded ring buffer — the serve loop is the only consumer and
// ingestion happens between predictions, so no locks are needed and the
// drain order (and therefore the whole pipeline) stays bit-deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mobility/campus_map.hpp"
#include "twin/observations.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace dtmsv::core {

/// One uplink status report on its way into the twin columns. Exactly one
/// of the payload members is meaningful, selected by `kind` (a tagged
/// union spelled as a struct: the payloads are tiny PODs, and keeping the
/// ring's slots trivially copyable matters more than the few spare bytes).
struct TwinEvent {
  enum class Kind : std::uint8_t { kChannel, kLocation, kWatch };

  Kind kind = Kind::kChannel;
  std::uint32_t user = 0;
  util::SimTime time = 0.0;
  twin::ChannelObservation channel{};
  mobility::Position position{};
  twin::WatchObservation watch{};

  static TwinEvent channel_report(std::uint32_t user, util::SimTime time,
                                  const twin::ChannelObservation& obs) {
    TwinEvent e;
    e.kind = Kind::kChannel;
    e.user = user;
    e.time = time;
    e.channel = obs;
    return e;
  }
  static TwinEvent location_report(std::uint32_t user, util::SimTime time,
                                   const mobility::Position& pos) {
    TwinEvent e;
    e.kind = Kind::kLocation;
    e.user = user;
    e.time = time;
    e.position = pos;
    return e;
  }
  static TwinEvent watch_report(std::uint32_t user, util::SimTime time,
                                const twin::WatchObservation& obs) {
    TwinEvent e;
    e.kind = Kind::kWatch;
    e.user = user;
    e.time = time;
    e.watch = obs;
    return e;
  }
};

/// Lifetime counters of one EventQueue.
struct EventQueueStats {
  std::uint64_t offered = 0;  // push() calls
  std::uint64_t dropped = 0;  // events shed to admit newer ones
  std::uint64_t drained = 0;  // events handed to a drain_until consumer
};

class EventQueue {
 public:
  explicit EventQueue(std::size_t capacity) : ring_(capacity) {
    DTMSV_EXPECTS_MSG(capacity > 0, "EventQueue: capacity must be positive");
  }

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const EventQueueStats& stats() const { return stats_; }

  /// Admits `event`. Producers must push in nondecreasing `time` order
  /// (checked). When the queue is full the oldest queued event is shed to
  /// make room and counted in stats().dropped — the newcomer is always
  /// admitted.
  void push(const TwinEvent& event) {
    DTMSV_EXPECTS_MSG(size_ == 0 || ring_[wrap(head_ + size_ - 1)].time <= event.time,
                      "EventQueue: events must arrive in nondecreasing time order");
    ++stats_.offered;
    if (size_ == ring_.size()) {
      head_ = next(head_);
      --size_;
      ++stats_.dropped;
    }
    ring_[wrap(head_ + size_)] = event;
    ++size_;
  }

  /// Hands every queued event with time <= `horizon` to `consume` in
  /// arrival order and removes it, stopping at the first newer event.
  /// Returns the number of events drained.
  template <typename F>
  std::size_t drain_until(util::SimTime horizon, F&& consume) {
    std::size_t drained = 0;
    while (size_ > 0 && ring_[head_].time <= horizon) {
      consume(ring_[head_]);
      head_ = next(head_);
      --size_;
      ++drained;
    }
    stats_.drained += drained;
    return drained;
  }

 private:
  std::size_t next(std::size_t i) const { return i + 1 == ring_.size() ? 0 : i + 1; }
  std::size_t wrap(std::size_t i) const {
    return i >= ring_.size() ? i - ring_.size() : i;
  }

  std::vector<TwinEvent> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  EventQueueStats stats_;
};

}  // namespace dtmsv::core
