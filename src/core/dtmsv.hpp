// Umbrella header: pulls in the full dtmsv public API.
//
// Downstream users who want a single include:
//   #include "core/dtmsv.hpp"
// Individual module headers remain the preferred includes inside this
// repository (smaller translation units, clearer dependencies).
#pragma once

// Substrates.
#include "util/clock.hpp"       // IWYU pragma: export
#include "util/csv.hpp"         // IWYU pragma: export
#include "util/error.hpp"       // IWYU pragma: export
#include "util/rng.hpp"         // IWYU pragma: export
#include "util/stats.hpp"       // IWYU pragma: export
#include "util/table.hpp"       // IWYU pragma: export

#include "nn/activations.hpp"   // IWYU pragma: export
#include "nn/conv1d.hpp"        // IWYU pragma: export
#include "nn/linear.hpp"        // IWYU pragma: export
#include "nn/loss.hpp"          // IWYU pragma: export
#include "nn/optimizer.hpp"     // IWYU pragma: export
#include "nn/pooling.hpp"       // IWYU pragma: export
#include "nn/sequential.hpp"    // IWYU pragma: export
#include "nn/serialize.hpp"     // IWYU pragma: export

#include "rl/ddqn.hpp"          // IWYU pragma: export

#include "clustering/kmeans.hpp"     // IWYU pragma: export
#include "clustering/metrics.hpp"    // IWYU pragma: export
#include "clustering/selectors.hpp"  // IWYU pragma: export

#include "mobility/campus_map.hpp"      // IWYU pragma: export
#include "mobility/random_waypoint.hpp" // IWYU pragma: export

#include "wireless/channel.hpp"    // IWYU pragma: export
#include "wireless/cqi.hpp"        // IWYU pragma: export
#include "wireless/multicast.hpp"  // IWYU pragma: export

#include "video/catalog.hpp"    // IWYU pragma: export
#include "video/dataset.hpp"    // IWYU pragma: export
#include "video/transcode.hpp"  // IWYU pragma: export

#include "behavior/preference.hpp"  // IWYU pragma: export
#include "behavior/session.hpp"     // IWYU pragma: export

#include "twin/collector.hpp"  // IWYU pragma: export
#include "twin/store.hpp"      // IWYU pragma: export
#include "twin/udt.hpp"        // IWYU pragma: export

#include "analysis/popularity.hpp"  // IWYU pragma: export
#include "analysis/recommend.hpp"   // IWYU pragma: export
#include "analysis/swiping.hpp"     // IWYU pragma: export

#include "predict/baselines.hpp"          // IWYU pragma: export
#include "predict/channel_predictor.hpp"  // IWYU pragma: export
#include "predict/demand.hpp"             // IWYU pragma: export
#include "predict/planner.hpp"            // IWYU pragma: export

// The paper's contribution.
#include "core/feature_compressor.hpp"  // IWYU pragma: export
#include "core/fleet.hpp"               // IWYU pragma: export
#include "core/group_constructor.hpp"   // IWYU pragma: export
#include "core/pipeline.hpp"            // IWYU pragma: export
#include "core/scenarios.hpp"           // IWYU pragma: export
#include "core/simulation.hpp"          // IWYU pragma: export
