// End-to-end simulation of the paper's scheme over resource reservation
// intervals:
//
//   tick loop (1 s): mobility -> channel -> viewing (individual sessions
//     during warm-up, group-feed multicast playback after) -> UDT collection
//   interval end:    realized demand vs. the prediction made one interval
//     earlier -> FeatureStage (1D-CNN compression of UDT windows) ->
//     GroupingStage (DDQN+K-means++) -> per-group swiping distribution,
//     preference aggregation, recommendation -> DemandStage (radio &
//     computing demand prediction for the next interval).
//
// The three stages are pluggable through core/pipeline.hpp's StageRegistry;
// the defaults reproduce the paper. Ground truth and prediction share the
// same structural model but diverge through what the twin actually observed
// (collection loss/latency/windows) versus what the users actually did —
// the gap the paper's accuracy number measures.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/popularity.hpp"
#include "analysis/recommend.hpp"
#include "analysis/swiping.hpp"
#include "behavior/session.hpp"
#include "core/feature_compressor.hpp"
#include "core/group_constructor.hpp"
#include "core/pipeline.hpp"
#include "mobility/random_waypoint.hpp"
#include "predict/demand.hpp"
#include "twin/collector.hpp"
#include "twin/store.hpp"
#include "util/stats.hpp"
#include "wireless/channel.hpp"
#include "wireless/multicast.hpp"

namespace dtmsv::core {

// NOTE for out-of-tree code: the pre-PR-3 stage-selection enums
// (core::FeatureMode, core::KSelectionMode, core::ChannelPredictorKind) and
// the SchemeConfig fields that carried them (feature_mode, k_mode,
// channel_predictor, joint_group_efficiency) were removed after one
// deprecation cycle. Stage selection is registry-keys-only now: set
// SchemeConfig::feature_stage = "cnn" | "raw" | "summary",
// grouping_stage = "ddqn" | "fixed" | "elbow" | "random" | "silhouette",
// demand_stage = "joint" | "last_value" | "ewma" | "linear_trend" | "mean"
// (joint_group_efficiency=false used to mean demand_stage=channel_predictor
// key; =true meant "joint"). See core/pipeline.hpp for the StageRegistry.

/// Full scheme configuration (defaults reproduce the paper's setup).
struct SchemeConfig {
  std::uint64_t seed = 42;
  std::size_t user_count = 120;
  double interval_s = 300.0;  // paper: 5-minute reservation interval
  double tick_s = 1.0;
  std::size_t warmup_intervals = 2;
  double feature_window_s = 600.0;
  std::size_t feature_timesteps = 32;
  double affinity_concentration = 0.35;

  behavior::SessionConfig session{};
  mobility::MobilityConfig mobility{};
  wireless::RadioConfig radio{};
  twin::CollectionPolicy collection{};
  CompressorConfig compressor{};
  GroupConstructorConfig grouping{};
  predict::DemandModelConfig demand{};
  analysis::RecommenderConfig recommender{};

  std::size_t swiping_bins = 20;
  double swiping_forgetting = 0.7;
  double popularity_forgetting = 0.8;

  /// Per-interval taste drift: each user's ground-truth affinity moves this
  /// fraction of the way toward a freshly drawn taste vector every interval
  /// (0 = static users, the paper's implicit setting). Exercises the twin's
  /// preference tracking under non-stationary behaviour.
  double affinity_drift_rate = 0.0;

  /// StageRegistry keys selecting the pipeline backends (the only stage
  /// selection mechanism; see core/pipeline.hpp and the migration note at
  /// the top of this header). Defaults reproduce the paper: "cnn" 1D-CNN
  /// autoencoder features, "ddqn" DDQN-empowered K selection, and the
  /// "joint" min-over-members demand forecast (unbiased for the multicast
  /// accounting; the per-member "last_value"/"ewma"/"linear_trend"/"mean"
  /// stages are the optimistically-biased ablation baselines).
  std::string feature_stage = "cnn";
  std::string grouping_stage = "ddqn";
  std::string demand_stage = "joint";

  /// K used by the "fixed" grouping stage (ignored by the others).
  std::size_t fixed_k = 4;
  /// Online residual calibration: the digital twin feeds the realized
  /// actual/predicted ratio back into the next interval's forecast (EWMA,
  /// clamped). Corrects the small structural biases a closed-form demand
  /// model cannot see (heterogeneous-member max-watch, rung/efficiency
  /// covariance during fades).
  bool online_bias_correction = true;
};

/// Validates a scheme configuration, throwing util::PreconditionError with
/// the offending field on invalid values (zero users, non-positive tick_s,
/// interval_s < tick_s, degenerate windows, bad forgetting factors, ...).
/// Called by the Simulation constructor; exposed for config-building tools.
void validate(const SchemeConfig& config);

/// The full scheme + environment.
class Simulation {
 public:
  explicit Simulation(const SchemeConfig& config);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Advances one reservation interval and returns its report (per-group
  /// reports included in EpochReport::groups).
  EpochReport run_interval();

  /// Streaming variant: advances one interval, delivering per-group reports
  /// through sink.on_group and the interval report (with empty `groups`)
  /// through sink.on_interval. Nothing is accumulated.
  void run_interval(ReportSink& sink);

  /// Runs `n` intervals, returning all reports.
  std::vector<EpochReport> run(std::size_t n);

  /// Runs `n` intervals streaming into `sink`.
  void run(std::size_t n, ReportSink& sink);

  /// Hands the user slot over to a newcomer (inter-cell handover in a
  /// multi-cell fleet): the slot's ground-truth affinity becomes
  /// `incoming`, the walker re-enters the campus at a fresh waypoint, the
  /// channel draws fresh shadowing/fading state, and the slot's digital
  /// twin is reset — the BS has no history for an arriving user. Returns
  /// the departing user's affinity so the caller can seat it elsewhere.
  /// Any active multicast group keeps the slot until the next regroup
  /// (group membership is only revised at interval boundaries).
  behavior::PreferenceVector handover_user(std::size_t slot,
                                           const behavior::PreferenceVector& incoming);

  // --- observability for benches, examples and tests ---
  const SchemeConfig& config() const { return config_; }
  util::SimTime now() const { return now_; }
  /// Total simulation ticks executed so far (exact: ticks are scheduled by
  /// integer index within each interval, never by accumulated float time).
  std::size_t tick_count() const { return tick_count_; }
  const video::Catalog& catalog() const { return catalog_; }
  const twin::TwinStore& twins() const { return *twins_; }
  const twin::CollectorStats& collector_stats() const;

  /// The active pipeline stages (names, learned-state queries).
  const FeatureStage& feature_stage() const { return *feature_stage_; }
  const GroupingStage& grouping_stage() const { return *grouping_stage_; }
  const DemandStage& demand_stage() const { return *demand_stage_; }

  /// Cumulative wall-time breakdown of the interval loop since construction
  /// (or the last reset), attributing cost to simulate vs. stages.
  const StageTimings& stage_timings() const { return timings_; }
  void reset_stage_timings() { timings_ = StageTimings{}; }

  std::size_t group_count() const { return groups_.size(); }
  /// Group observability accessors. All throw util::RuntimeError when the
  /// index is out of range (including when no groups are active yet).
  const std::vector<std::size_t>& group_members(std::size_t g) const;
  const analysis::SwipingDistribution& group_swiping(std::size_t g) const;
  const behavior::PreferenceVector& group_preference(std::size_t g) const;
  const analysis::Recommendation& group_recommendation(std::size_t g) const;

  /// Index of the active group with the highest preference weight for the
  /// given category (the paper reports "multicast group 1", its most
  /// News-leaning group). Throws util::RuntimeError when no groups are
  /// active.
  std::size_t most_preferring_group(video::Category category) const;

  /// Ground-truth user affinities (for clustering-quality evaluation).
  const std::vector<behavior::PreferenceVector>& true_affinities() const {
    return affinities_;
  }

  /// Persists the learned models (the stages' learned state: 1D-CNN
  /// encoder+decoder and, when the DDQN grouping stage is active, its
  /// online Q-network) so a trained scheme can be redeployed without
  /// retraining. At least one active stage must have learned state.
  void save_models(std::ostream& os) const;
  /// Loads models saved by save_models into a simulation whose stages have
  /// the same learned-state layout; throws util::RuntimeError on mismatch.
  void load_models(std::istream& is);

 private:
  struct Group {
    std::vector<std::size_t> members;
    behavior::PreferenceVector preference{};
    analysis::Recommendation recommendation;
    analysis::SwipingDistribution swiping;
    predict::ResourceDemand predicted;
    double predicted_efficiency = 0.0;

    // Playback state.
    std::size_t playlist_pos = 0;
    const video::Video* current = nullptr;
    util::SimTime video_started = 0.0;
    double on_air_s = 0.0;
    double gap_remaining_s = 0.0;
    std::vector<double> member_watch_s;
    std::size_t rung = 0;
    bool events_emitted = false;

    // Per-interval accounting.
    double bits = 0.0;
    double hz_seconds = 0.0;
    double compute_cycles = 0.0;
    double unicast_hz_seconds = 0.0;  // per-member private-stream counterfactual
    double efficiency_time_integral = 0.0;  // for mean realized efficiency
    double on_air_time = 0.0;
    std::size_t videos_played = 0;

    explicit Group(std::size_t swiping_bins, double swiping_forgetting)
        : swiping(swiping_bins, swiping_forgetting) {}
  };

  EpochReport run_interval_impl(ReportSink* sink);
  void tick(std::vector<behavior::ViewEvent>& events, util::SimTime t0,
            util::SimTime t1);
  void drift_affinities();
  double group_live_efficiency(const Group& g) const;
  void start_group_video(Group& g, util::SimTime at);
  void advance_group(Group& g, util::SimTime from, double dt,
                     std::vector<behavior::ViewEvent>& events);
  void rebuild_groups(const clustering::Points& points, EpochReport& report);

  SchemeConfig config_;
  util::Rng rng_;
  mobility::CampusMap campus_;
  video::Catalog catalog_;
  predict::ContentStats content_;

  std::unique_ptr<mobility::MobilityField> mobility_;
  std::unique_ptr<wireless::ChannelModel> channel_;
  std::unique_ptr<twin::TwinStore> twins_;
  /// Pooled feature-extraction buffers handed to every TwinSnapshot: the
  /// interval path materialises windows/summaries in place (no per-user
  /// vectors), and unchanged users are served from the cached rows.
  twin::FeatureArena feature_arena_;
  std::unique_ptr<twin::StatusCollector> collector_;
  std::vector<behavior::PreferenceVector> affinities_;
  std::vector<behavior::ViewingSession> warmup_sessions_;
  analysis::PopularityAnalyzer popularity_;

  std::unique_ptr<FeatureStage> feature_stage_;
  std::unique_ptr<GroupingStage> grouping_stage_;
  std::unique_ptr<DemandStage> demand_stage_;
  wireless::MulticastPhy phy_;

  std::vector<Group> groups_;
  util::SimTime now_ = 0.0;
  util::IntervalId interval_ = 0;
  std::size_t tick_count_ = 0;
  StageTimings timings_;
  util::Rng playback_rng_;
  util::Rng cluster_rng_;
  util::Rng drift_rng_;     // taste drift; never perturbs the playback stream
  util::Rng handover_rng_;  // fresh state for users arriving via handover
  util::Ewma radio_bias_{0.3};    // EWMA of actual/predicted radio ratio
  util::Ewma compute_bias_{0.3};  // EWMA of actual/predicted compute ratio
};

}  // namespace dtmsv::core
