// End-to-end simulation of the paper's scheme over resource reservation
// intervals:
//
//   tick loop (1 s): mobility -> channel -> viewing (individual sessions
//     during warm-up, group-feed multicast playback after) -> UDT collection
//   interval end:    realized demand vs. the prediction made one interval
//     earlier -> 1D-CNN compression of UDT windows -> DDQN+K-means++
//     grouping -> per-group swiping distribution, preference aggregation,
//     recommendation -> radio & computing demand prediction for the next
//     interval.
//
// Ground truth and prediction share the same structural model but diverge
// through what the twin actually observed (collection loss/latency/windows)
// versus what the users actually did — the gap the paper's accuracy
// number measures.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/popularity.hpp"
#include "analysis/recommend.hpp"
#include "analysis/swiping.hpp"
#include "behavior/session.hpp"
#include "clustering/selectors.hpp"
#include "core/feature_compressor.hpp"
#include "core/group_constructor.hpp"
#include "mobility/random_waypoint.hpp"
#include "predict/channel_predictor.hpp"
#include "predict/demand.hpp"
#include "twin/collector.hpp"
#include "twin/store.hpp"
#include "util/stats.hpp"
#include "wireless/channel.hpp"
#include "wireless/multicast.hpp"

namespace dtmsv::core {

/// How per-user features for clustering are produced (ablation ABL-CMP).
enum class FeatureMode {
  kCnnEmbedding,  // paper: 1D-CNN autoencoder bottleneck
  kRawWindow,     // flattened raw window, no compression
  kSummaryStats,  // hand-rolled summary statistics
};

/// How the grouping number K is chosen (ablation ABL-CLU).
enum class KSelectionMode {
  kDdqn,             // paper: DDQN-empowered
  kFixed,            // fixed K
  kElbow,            // elbow heuristic sweep
  kRandom,           // random K
  kSilhouetteSweep,  // slow silhouette oracle
};

/// Which per-user channel predictor feeds group efficiency forecasts.
enum class ChannelPredictorKind { kLastValue, kEwma, kLinearTrend, kMean };

/// Full scheme configuration (defaults reproduce the paper's setup).
struct SchemeConfig {
  std::uint64_t seed = 42;
  std::size_t user_count = 120;
  double interval_s = 300.0;  // paper: 5-minute reservation interval
  double tick_s = 1.0;
  std::size_t warmup_intervals = 2;
  double feature_window_s = 600.0;
  std::size_t feature_timesteps = 32;
  double affinity_concentration = 0.35;

  behavior::SessionConfig session{};
  mobility::MobilityConfig mobility{};
  wireless::RadioConfig radio{};
  twin::CollectionPolicy collection{};
  CompressorConfig compressor{};
  GroupConstructorConfig grouping{};
  predict::DemandModelConfig demand{};
  analysis::RecommenderConfig recommender{};

  std::size_t swiping_bins = 20;
  double swiping_forgetting = 0.7;
  double popularity_forgetting = 0.8;

  /// Per-interval taste drift: each user's ground-truth affinity moves this
  /// fraction of the way toward a freshly drawn taste vector every interval
  /// (0 = static users, the paper's implicit setting). Exercises the twin's
  /// preference tracking under non-stationary behaviour.
  double affinity_drift_rate = 0.0;

  FeatureMode feature_mode = FeatureMode::kCnnEmbedding;
  KSelectionMode k_mode = KSelectionMode::kDdqn;
  std::size_t fixed_k = 4;
  ChannelPredictorKind channel_predictor = ChannelPredictorKind::kEwma;
  /// Forecast group efficiency from the joint min-over-members series
  /// (harmonic mean; unbiased for the multicast accounting). When false,
  /// falls back to min over per-member forecasts (optimistically biased —
  /// kept for the ablation bench).
  bool joint_group_efficiency = true;
  /// Online residual calibration: the digital twin feeds the realized
  /// actual/predicted ratio back into the next interval's forecast (EWMA,
  /// clamped). Corrects the small structural biases a closed-form demand
  /// model cannot see (heterogeneous-member max-watch, rung/efficiency
  /// covariance during fades).
  bool online_bias_correction = true;
};

/// Per-group slice of an interval report.
struct GroupReport {
  std::size_t group_id = 0;
  std::size_t size = 0;
  std::size_t rung = 0;
  double predicted_efficiency = 0.0;
  double realized_efficiency = 0.0;
  double predicted_radio_hz = 0.0;
  double actual_radio_hz = 0.0;
  double predicted_compute_cycles = 0.0;
  double actual_compute_cycles = 0.0;
  /// Counterfactual: bandwidth the same viewing would have cost had every
  /// member received a private unicast stream at their own link adaptation
  /// (the paper's motivation for multicast).
  double unicast_radio_hz = 0.0;
  std::size_t videos_played = 0;
};

/// One interval's outcome.
struct EpochReport {
  util::IntervalId interval = 0;
  bool grouped = false;           // groups were active during this interval
  bool has_prediction = false;    // predictions existed for this interval
  std::size_t k = 0;              // grouping chosen *for the next* interval
  double silhouette = 0.0;
  double ddqn_epsilon = 0.0;
  double reconstruction_loss = 0.0;
  std::vector<GroupReport> groups;
  double predicted_radio_hz_total = 0.0;
  double actual_radio_hz_total = 0.0;
  double predicted_compute_total = 0.0;
  double actual_compute_total = 0.0;
  double unicast_radio_hz_total = 0.0;
  /// |pred − actual| / actual on the radio total (0 when undefined).
  double radio_error = 0.0;
  double compute_error = 0.0;
};

/// The full scheme + environment.
class Simulation {
 public:
  explicit Simulation(const SchemeConfig& config);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Advances one reservation interval and returns its report.
  EpochReport run_interval();

  /// Runs `n` intervals, returning all reports.
  std::vector<EpochReport> run(std::size_t n);

  /// Hands the user slot over to a newcomer (inter-cell handover in a
  /// multi-cell fleet): the slot's ground-truth affinity becomes
  /// `incoming`, the walker re-enters the campus at a fresh waypoint, the
  /// channel draws fresh shadowing/fading state, and the slot's digital
  /// twin is reset — the BS has no history for an arriving user. Returns
  /// the departing user's affinity so the caller can seat it elsewhere.
  /// Any active multicast group keeps the slot until the next regroup
  /// (group membership is only revised at interval boundaries).
  behavior::PreferenceVector handover_user(std::size_t slot,
                                           const behavior::PreferenceVector& incoming);

  // --- observability for benches, examples and tests ---
  const SchemeConfig& config() const { return config_; }
  util::SimTime now() const { return now_; }
  /// Total simulation ticks executed so far (exact: ticks are scheduled by
  /// integer index within each interval, never by accumulated float time).
  std::size_t tick_count() const { return tick_count_; }
  const video::Catalog& catalog() const { return catalog_; }
  const twin::TwinStore& twins() const { return *twins_; }
  const twin::CollectorStats& collector_stats() const;

  std::size_t group_count() const { return groups_.size(); }
  const std::vector<std::size_t>& group_members(std::size_t g) const;
  const analysis::SwipingDistribution& group_swiping(std::size_t g) const;
  const behavior::PreferenceVector& group_preference(std::size_t g) const;
  const analysis::Recommendation& group_recommendation(std::size_t g) const;

  /// Index of the active group with the highest preference weight for the
  /// given category (the paper reports "multicast group 1", its most
  /// News-leaning group). Requires group_count() > 0.
  std::size_t most_preferring_group(video::Category category) const;

  /// Ground-truth user affinities (for clustering-quality evaluation).
  const std::vector<behavior::PreferenceVector>& true_affinities() const {
    return affinities_;
  }

  /// Persists the learned models (1D-CNN encoder+decoder and, when the
  /// DDQN selector is active, its online Q-network) so a trained scheme can
  /// be redeployed without retraining. Models must exist for the current
  /// configuration (CNN feature mode and/or DDQN K mode).
  void save_models(std::ostream& os) const;
  /// Loads models saved by save_models into a simulation with the same
  /// feature/K configuration; throws util::RuntimeError on layout mismatch.
  void load_models(std::istream& is);

 private:
  struct Group {
    std::vector<std::size_t> members;
    behavior::PreferenceVector preference{};
    analysis::Recommendation recommendation;
    analysis::SwipingDistribution swiping;
    predict::ResourceDemand predicted;
    double predicted_efficiency = 0.0;

    // Playback state.
    std::size_t playlist_pos = 0;
    const video::Video* current = nullptr;
    util::SimTime video_started = 0.0;
    double on_air_s = 0.0;
    double gap_remaining_s = 0.0;
    std::vector<double> member_watch_s;
    std::size_t rung = 0;
    bool events_emitted = false;

    // Per-interval accounting.
    double bits = 0.0;
    double hz_seconds = 0.0;
    double compute_cycles = 0.0;
    double unicast_hz_seconds = 0.0;  // per-member private-stream counterfactual
    double efficiency_time_integral = 0.0;  // for mean realized efficiency
    double on_air_time = 0.0;
    std::size_t videos_played = 0;

    explicit Group(std::size_t swiping_bins, double swiping_forgetting)
        : swiping(swiping_bins, swiping_forgetting) {}
  };

  void tick(std::vector<behavior::ViewEvent>& events, util::SimTime t0,
            util::SimTime t1);
  void drift_affinities();
  double group_live_efficiency(const Group& g) const;
  void start_group_video(Group& g, util::SimTime at);
  void advance_group(Group& g, util::SimTime from, double dt,
                     std::vector<behavior::ViewEvent>& events);
  clustering::Points build_features(float* reconstruction_loss);
  void rebuild_groups(const clustering::Points& points, EpochReport& report);

  SchemeConfig config_;
  util::Rng rng_;
  mobility::CampusMap campus_;
  video::Catalog catalog_;
  predict::ContentStats content_;

  std::unique_ptr<mobility::MobilityField> mobility_;
  std::unique_ptr<wireless::ChannelModel> channel_;
  std::unique_ptr<twin::TwinStore> twins_;
  std::unique_ptr<twin::StatusCollector> collector_;
  std::vector<behavior::PreferenceVector> affinities_;
  std::vector<behavior::ViewingSession> warmup_sessions_;
  analysis::PopularityAnalyzer popularity_;

  std::unique_ptr<FeatureCompressor> compressor_;
  std::unique_ptr<GroupConstructor> constructor_;
  std::unique_ptr<clustering::KSelector> baseline_selector_;
  std::unique_ptr<predict::EfficiencyPredictor> channel_predictor_;
  wireless::MulticastPhy phy_;

  std::vector<Group> groups_;
  util::SimTime now_ = 0.0;
  util::IntervalId interval_ = 0;
  std::size_t tick_count_ = 0;
  util::Rng playback_rng_;
  util::Rng cluster_rng_;
  util::Rng drift_rng_;     // taste drift; never perturbs the playback stream
  util::Rng handover_rng_;  // fresh state for users arriving via handover
  util::Ewma radio_bias_{0.3};    // EWMA of actual/predicted radio ratio
  util::Ewma compute_bias_{0.3};  // EWMA of actual/predicted compute ratio
};

}  // namespace dtmsv::core
