// Always-on streaming serving mode: standing twin-report traffic in, one
// interval prediction out per reservation boundary, under a latency SLO.
//
// The batch Simulation owns its environment and advances it tick by tick;
// the ServeLoop instead *receives* the environment as a stream of
// TwinEvents (offer()), holds them in a bounded EventQueue (backpressure:
// shed-oldest with exact drop accounting), and on every interval boundary
// crossed by advance_to() drains the admitted events into the columnar
// TwinColumnStore and fires the pipeline — feature extraction, grouping,
// per-group abstraction + demand prediction — exactly as the batch
// interval loop wires it.
//
// Latency SLO: each fired prediction is timed against ServeConfig::
// deadline_ms using an injected ServeClock (steady_clock in production, a
// scripted ManualServeClock in tests, which keeps every pipeline result
// bit-deterministic for any DTMSV_THREADS — the wall clock only ever
// decides *fidelity*, never arithmetic). A DegradationPolicy folds the
// hit/miss stream into a position on a fidelity ladder; each rung names a
// FeatureStage registry key plus an extraction mode, so degrading under
// load is a pure key swap through PR 3's StageRegistry (cnn+full ->
// cnn-incremental -> summary by default) and recovery steps back up after
// sustained hits. Every transition and every drop batch streams through
// the ReportSink interface (on_degradation / on_drop) next to the ordinary
// group/interval reports.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/popularity.hpp"
#include "core/event_queue.hpp"
#include "core/pipeline.hpp"
#include "core/simulation.hpp"
#include "predict/demand.hpp"
#include "twin/arena.hpp"
#include "twin/store.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"
#include "video/catalog.hpp"

namespace dtmsv::core {

// ------------------------------------------------------------------ clocks

/// Wall-clock source for deadline accounting. The loop samples it exactly
/// twice per fired prediction (immediately before feature extraction and
/// immediately after demand prediction), which is the contract scripted
/// test clocks rely on.
class ServeClock {
 public:
  virtual ~ServeClock() = default;
  virtual double now_s() = 0;
};

/// Production clock: std::chrono::steady_clock.
class SteadyServeClock final : public ServeClock {
 public:
  double now_s() override {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Deterministic scripted clock for tests. Each now_s() call first advances
/// by the next queued step (or by default_step once the queue is empty),
/// then returns the current time — so queue_pipeline_cost(c) makes exactly
/// one upcoming prediction appear to cost `c` seconds.
class ManualServeClock final : public ServeClock {
 public:
  double now_s() override {
    double step = default_step;
    if (!steps_.empty()) {
      step = steps_.front();
      steps_.pop_front();
    }
    now_ += step;
    return now_;
  }

  /// Queues one clock advance consumed by the next now_s() call.
  void queue_step(double dt) { steps_.push_back(dt); }
  /// Scripts the next prediction's apparent latency: zero advance at its
  /// start sample, `cost_s` at its end sample.
  void queue_pipeline_cost(double cost_s) {
    queue_step(0.0);
    queue_step(cost_s);
  }

  double default_step = 0.0;

 private:
  double now_ = 0.0;
  std::deque<double> steps_;
};

// ------------------------------------------------------------- degradation

/// One rung of the fidelity ladder. Rung 0 is full fidelity; higher rungs
/// trade prediction quality for latency by swapping the feature-stage
/// registry key and/or the extraction mode.
struct DegradationLevel {
  std::string name;                 // reported through DegradationEvent
  std::string feature_stage = "cnn";  // StageRegistry feature key
  bool full_extraction = false;     // true: bypass the arena's incremental cache
};

struct DegradationPolicyConfig {
  /// Rungs ordered best-first. Default: the paper pipeline at full
  /// re-extraction cost, then incremental extraction, then the cheap
  /// summary-statistics features.
  std::vector<DegradationLevel> ladder = default_ladder();
  /// Consecutive deadline misses before stepping one rung down.
  std::size_t step_down_after = 1;
  /// Consecutive deadline hits before stepping one rung back up.
  std::size_t step_up_after = 3;

  static std::vector<DegradationLevel> default_ladder();
};

/// Folds the per-interval deadline outcome stream into a ladder position.
/// Pure bookkeeping (no clock, no stages) so tests can drive it directly.
class DegradationPolicy {
 public:
  explicit DegradationPolicy(DegradationPolicyConfig config);

  std::size_t level() const { return level_; }
  std::size_t level_count() const { return config_.ladder.size(); }
  const DegradationLevel& current() const { return config_.ladder[level_]; }
  const DegradationLevel& at(std::size_t i) const { return config_.ladder[i]; }

  /// Records one interval's outcome; returns the new level when a ladder
  /// transition fired (one rung at a time), std::nullopt otherwise.
  std::optional<std::size_t> record(bool deadline_hit);

 private:
  DegradationPolicyConfig config_;
  std::size_t level_ = 0;
  std::size_t consecutive_misses_ = 0;
  std::size_t consecutive_hits_ = 0;
};

// -------------------------------------------------------------- serve loop

struct ServeConfig {
  /// Pipeline geometry + stage keys. scheme.interval_s is the prediction
  /// cadence; scheme.feature_stage is ignored (the ladder selects feature
  /// stages), grouping_stage/demand_stage apply as usual. scheme.user_count
  /// bounds the TwinEvent::user ids offer() accepts.
  SchemeConfig scheme{};
  double deadline_ms = 50.0;       // per-prediction latency budget
  std::size_t queue_capacity = 4096;
  DegradationPolicyConfig degradation{};
  /// Feature normalisation; the default constants match the default campus
  /// extent (see twin::FeatureScaling).
  twin::FeatureScaling scaling{};
};

/// Throws util::PreconditionError on invalid values (delegates scheme
/// validation to core::validate, then checks the serve-specific fields:
/// positive deadline and capacity, non-empty ladder with registered
/// feature keys, positive hysteresis counts).
void validate(const ServeConfig& config);

/// Lifetime counters + the latency record of one ServeLoop.
struct ServeStats {
  std::size_t intervals = 0;        // predictions fired
  std::size_t deadline_misses = 0;
  std::uint64_t events_ingested = 0;  // drained into the twin columns
  std::uint64_t events_dropped = 0;   // shed by the queue
  std::size_t steps_down = 0;       // ladder transitions away from rung 0
  std::size_t steps_up = 0;         // ladder transitions toward rung 0
  std::vector<double> latencies_ms;  // one entry per fired prediction
};

/// Nearest-rank percentile of `values` (q in [0, 100]); 0 when empty.
/// Does not require `values` sorted.
double latency_percentile(const std::vector<double>& values, double q);

/// The serving engine. Single-threaded at the API surface (offer/advance_to
/// from one thread); the pipeline stages themselves parallelise internally
/// through util::parallel_for exactly as in batch mode.
class ServeLoop {
 public:
  /// `clock` and `sink` must outlive the loop; `sink` may be null.
  ServeLoop(const ServeConfig& config, ServeClock& clock,
            ReportSink* sink = nullptr);

  ServeLoop(const ServeLoop&) = delete;
  ServeLoop& operator=(const ServeLoop&) = delete;

  const ServeConfig& config() const { return config_; }
  /// The catalog the loop generated from scheme.session.engagement.catalog
  /// (workload generators sample video ids from it so watch reports name
  /// real videos).
  const video::Catalog& catalog() const { return catalog_; }
  const twin::TwinStore& twins() const { return *twins_; }
  const DegradationPolicy& degradation() const { return policy_; }
  const ServeStats& stats() const { return stats_; }
  std::size_t queue_size() const { return queue_.size(); }
  /// Event time the loop has advanced to.
  util::SimTime now() const { return now_; }
  /// Index of the next interval boundary to fire.
  util::IntervalId next_interval() const { return interval_; }

  /// Admission control: enqueues one twin report (bounded queue,
  /// shed-oldest under overload). Events must carry nondecreasing
  /// timestamps and a user id < scheme.user_count.
  void offer(const TwinEvent& event);

  /// Advances event time to `t` (monotonic), draining admitted events into
  /// the twin columns and firing one prediction per interval boundary
  /// crossed. Each prediction consumes only events timestamped at or
  /// before its boundary.
  void advance_to(util::SimTime t);

 private:
  void ingest(const TwinEvent& event);
  void report_drops();
  void snapshot_preferences(util::SimTime at);
  void fire_prediction(util::SimTime at);

  ServeConfig config_;
  ServeClock* clock_;
  ReportSink* sink_;
  util::Rng rng_;
  video::Catalog catalog_;
  predict::ContentStats content_;
  std::unique_ptr<twin::TwinStore> twins_;
  twin::FeatureArena arena_;
  EventQueue queue_;
  analysis::PopularityAnalyzer popularity_;
  /// One constructed stage per ladder rung (all built up front so a swap
  /// under load costs nothing and learned stages keep training wherever
  /// the ladder currently sits).
  std::vector<std::unique_ptr<FeatureStage>> feature_stages_;
  std::unique_ptr<GroupingStage> grouping_stage_;
  std::unique_ptr<DemandStage> demand_stage_;
  DegradationPolicy policy_;
  util::Rng cluster_rng_;
  /// Users with watch evidence since their last preference snapshot; only
  /// these get a record_preference row per interval, so untouched users
  /// keep clean revision watermarks and stay cacheable incrementally.
  std::vector<std::uint8_t> preference_dirty_;
  util::SimTime now_ = 0.0;
  util::IntervalId interval_ = 0;
  std::uint64_t reported_drops_ = 0;
  ServeStats stats_;
};

}  // namespace dtmsv::core
