// Multi-cell fleet: shards a large user population across N cells, each an
// independent core::Simulation (own RNG streams, own campus instance, own
// twin store and learning state — the paper's per-cell DT pipeline by
// construction), and runs the per-interval pipelines concurrently on the
// util::parallel thread pool.
//
// Determinism: every shard consumes only its own forked streams, the pool
// hands workers disjoint shard ranges, nested parallel_for calls issued by
// a shard's numeric core run inline on that worker, and aggregation walks
// shards in fixed index order — so the fleet report is bit-identical for
// any DTMSV_THREADS value.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/simulation.hpp"
#include "util/stats.hpp"

namespace dtmsv::core {

/// Multi-cell deployment configuration.
struct FleetConfig {
  /// Per-cell scheme template. `base.seed` and `base.user_count` are
  /// overridden per shard; everything else applies to every cell.
  SchemeConfig base{};
  std::size_t cell_count = 4;
  /// Users sharded near-evenly across the cells (cell c gets
  /// total/N users, the first total%N cells one extra).
  std::size_t total_users = 480;
  /// Fleet master seed; each shard's Simulation seed derives from it.
  std::uint64_t seed = 42;
};

/// One interval's outcome across every shard of the fleet. A "shard" is one
/// Simulation instance: the initial cells, plus any surge shards added
/// mid-run (a surge shard is co-located with an existing cell and its
/// demand aggregates into that cell).
struct FleetReport {
  util::IntervalId interval = 0;
  std::size_t cell_count = 0;
  std::size_t user_count = 0;      // live users across all shards
  std::size_t grouped_shards = 0;  // shards past warm-up this interval
  std::vector<EpochReport> shards;      // per-shard reports, fixed order
  std::vector<std::size_t> shard_cell;  // owning cell of each shard

  double predicted_radio_hz_total = 0.0;
  double actual_radio_hz_total = 0.0;
  double predicted_compute_total = 0.0;
  double actual_compute_total = 0.0;
  double unicast_radio_hz_total = 0.0;
  /// |pred − actual| / actual on the fleet totals (0 when undefined).
  double radio_error = 0.0;
  double compute_error = 0.0;

  /// Distribution of per-shard interval errors (shards with predictions).
  util::RunningStats shard_radio_error;
  util::RunningStats shard_compute_error;
  /// Distribution of per-group radio errors across the whole fleet, merged
  /// from the per-shard accumulators filled in the parallel phase.
  util::RunningStats group_radio_error;
};

/// N independent cells advanced in lock-step, one reservation interval at
/// a time, plus the scenario hooks (flash-crowd surge, inter-cell churn)
/// the scenario library drives.
class SimulationFleet {
 public:
  explicit SimulationFleet(const FleetConfig& config);

  /// Advances every shard one reservation interval (concurrently) and
  /// returns the aggregated fleet report.
  FleetReport run_interval();

  /// Runs `n` intervals, returning all fleet reports.
  std::vector<FleetReport> run(std::size_t n);

  /// Flash crowd: `users` fresh arrivals surge into `cell`, modeled as a
  /// co-located shard that starts its own warm-up mid-run (newcomers have
  /// no twin history, so their pipeline must warm up like any cold cell).
  void add_surge_shard(std::size_t cell, std::size_t users);

  /// Mobility churn: hands over roughly `fraction` of the population
  /// between random cell pairs. Each handover swaps the ground-truth
  /// affinities of one slot in each of two distinct shards and resets both
  /// slots' twins, walkers and channel state (each BS must re-learn its
  /// newcomer). Returns the number of users handed over. Deterministic:
  /// pairing is drawn from the fleet's own stream on the calling thread.
  std::size_t churn(double fraction);

  // --- observability ---
  const FleetConfig& config() const { return config_; }
  std::size_t cell_count() const { return config_.cell_count; }
  std::size_t shard_count() const { return shards_.size(); }
  /// Live user total across all shards (grows when surges arrive).
  std::size_t user_count() const;
  Simulation& shard(std::size_t i);
  const Simulation& shard(std::size_t i) const;
  std::size_t shard_cell(std::size_t i) const;
  util::IntervalId interval() const { return interval_; }

 private:
  struct Shard {
    std::size_t cell = 0;
    std::unique_ptr<Simulation> sim;
  };

  void add_shard(std::size_t cell, std::size_t users);

  FleetConfig config_;
  util::Rng churn_rng_;
  std::uint64_t shard_seq_ = 0;  // shard creation counter -> shard seeds
  std::vector<Shard> shards_;
  util::IntervalId interval_ = 0;
};

}  // namespace dtmsv::core
