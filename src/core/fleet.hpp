// Multi-cell fleet: shards a large user population across N cells, each an
// independent core::Simulation (own RNG streams, own campus instance, own
// twin store and learning state — the paper's per-cell DT pipeline by
// construction), and runs the per-interval pipelines concurrently on the
// util::parallel thread pool.
//
// Report plumbing is streaming: each shard's pipeline delivers its interval
// through a per-shard ReportSink accumulator, so the fleet aggregates
// without materializing per-shard EpochReport vectors. An optional caller
// sink observes every shard's stream (and churn handovers), delivered in
// fixed shard order after the parallel phase.
//
// Determinism: every shard consumes only its own forked streams, the pool
// hands workers disjoint shard ranges, nested parallel_for calls issued by
// a shard's numeric core run inline on that worker, and aggregation walks
// shards in fixed index order — so the fleet report is bit-identical for
// any DTMSV_THREADS value.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/simulation.hpp"
#include "util/stats.hpp"

namespace dtmsv::core {

/// Multi-cell deployment configuration.
struct FleetConfig {
  /// Per-cell scheme template. `base.seed` and `base.user_count` are
  /// overridden per shard; everything else applies to every cell.
  SchemeConfig base{};
  std::size_t cell_count = 4;
  /// Users sharded near-evenly across the cells (cell c gets
  /// total/N users, the first total%N cells one extra).
  std::size_t total_users = 480;
  /// Fleet master seed; each shard's Simulation seed derives from it.
  std::uint64_t seed = 42;
};

/// Validates a fleet configuration (cell_count > 0, at least one user per
/// cell, valid per-cell base scheme), throwing util::PreconditionError on
/// invalid values. Called by the SimulationFleet constructor.
void validate(const FleetConfig& config);

/// Compact per-shard slice of a fleet interval (the scalars the aggregate
/// and the observability consumers need — not the full EpochReport).
struct ShardSummary {
  std::size_t cell = 0;   // owning cell of this shard
  std::size_t users = 0;  // live users in the shard
  bool grouped = false;
  bool has_prediction = false;
  std::size_t k = 0;
  double silhouette = 0.0;
  double predicted_radio_hz_total = 0.0;
  double actual_radio_hz_total = 0.0;
  double predicted_compute_total = 0.0;
  double actual_compute_total = 0.0;
  double unicast_radio_hz_total = 0.0;
  double radio_error = 0.0;
  double compute_error = 0.0;
};

/// One interval's outcome across every shard of the fleet. A "shard" is one
/// Simulation instance: the initial cells, plus any surge shards added
/// mid-run (a surge shard is co-located with an existing cell and its
/// demand aggregates into that cell).
struct FleetReport {
  util::IntervalId interval = 0;
  std::size_t cell_count = 0;
  std::size_t user_count = 0;      // live users across all shards
  std::size_t grouped_shards = 0;  // shards past warm-up this interval
  std::vector<ShardSummary> shards;  // per-shard summaries, fixed order

  double predicted_radio_hz_total = 0.0;
  double actual_radio_hz_total = 0.0;
  double predicted_compute_total = 0.0;
  double actual_compute_total = 0.0;
  double unicast_radio_hz_total = 0.0;
  /// |pred − actual| / actual on the fleet totals (0 when undefined).
  double radio_error = 0.0;
  double compute_error = 0.0;

  /// Distribution of per-shard interval errors (shards with predictions).
  util::RunningStats shard_radio_error;
  util::RunningStats shard_compute_error;
  /// Distribution of per-group radio errors across the whole fleet, merged
  /// from the per-shard accumulators filled in the parallel phase.
  util::RunningStats group_radio_error;
};

/// N independent cells advanced in lock-step, one reservation interval at
/// a time, plus the scenario hooks (flash-crowd surge, inter-cell churn)
/// the scenario library drives.
class SimulationFleet {
 public:
  explicit SimulationFleet(const FleetConfig& config);

  /// Advances every shard one reservation interval (concurrently) and
  /// returns the aggregated fleet report. When `sink` is non-null it
  /// observes every shard's group/interval stream, replayed in fixed shard
  /// order after the parallel phase (deterministic for any thread count);
  /// interval reports arrive with empty `groups` per the ReportSink
  /// contract.
  FleetReport run_interval(ReportSink* sink = nullptr);

  /// Runs `n` intervals, returning all fleet reports.
  std::vector<FleetReport> run(std::size_t n);

  /// Flash crowd: `users` fresh arrivals surge into `cell`, modeled as a
  /// co-located shard that starts its own warm-up mid-run (newcomers have
  /// no twin history, so their pipeline must warm up like any cold cell).
  void add_surge_shard(std::size_t cell, std::size_t users);

  /// Mobility churn: hands over roughly `fraction` of the population
  /// between random cell pairs. Each handover swaps the ground-truth
  /// affinities of one slot in each of two distinct shards and resets both
  /// slots' twins, walkers and channel state (each BS must re-learn its
  /// newcomer). Returns the number of users handed over; each swap is also
  /// reported to `sink` (when non-null) via on_handover. Deterministic:
  /// pairing is drawn from the fleet's own stream on the calling thread.
  std::size_t churn(double fraction, ReportSink* sink = nullptr);

  // --- observability ---
  const FleetConfig& config() const { return config_; }
  std::size_t cell_count() const { return config_.cell_count; }
  std::size_t shard_count() const { return shards_.size(); }
  /// Live user total across all shards (grows when surges arrive).
  std::size_t user_count() const;
  Simulation& shard(std::size_t i);
  const Simulation& shard(std::size_t i) const;
  std::size_t shard_cell(std::size_t i) const;
  util::IntervalId interval() const { return interval_; }

 private:
  struct Shard {
    std::size_t cell = 0;
    std::unique_ptr<Simulation> sim;
  };

  void add_shard(std::size_t cell, std::size_t users);

  FleetConfig config_;
  util::Rng churn_rng_;
  std::uint64_t shard_seq_ = 0;  // shard creation counter -> shard seeds
  std::vector<Shard> shards_;
  util::IntervalId interval_ = 0;
};

}  // namespace dtmsv::core
