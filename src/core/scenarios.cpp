#include "core/scenarios.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace dtmsv::core {

const std::array<ScenarioKind, kScenarioKindCount>& all_scenarios() {
  static const std::array<ScenarioKind, kScenarioKindCount> kinds = {
      ScenarioKind::kSteadyState,
      ScenarioKind::kFlashCrowd,
      ScenarioKind::kMobilityChurn,
      ScenarioKind::kCatalogDrift,
  };
  return kinds;
}

std::string to_string(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kSteadyState:
      return "steady_state";
    case ScenarioKind::kFlashCrowd:
      return "flash_crowd";
    case ScenarioKind::kMobilityChurn:
      return "mobility_churn";
    case ScenarioKind::kCatalogDrift:
      return "catalog_drift";
  }
  throw util::PreconditionError("unknown ScenarioKind");
}

ScenarioConfig make_scenario(ScenarioKind kind, std::size_t total_users,
                             std::size_t cell_count, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.kind = kind;
  cfg.total_users = total_users;
  cfg.cell_count = cell_count;
  cfg.seed = seed;

  // Shared base: 1-minute intervals so a scenario finishes in seconds at
  // smoke scale yet exercises the full pipeline every interval.
  SchemeConfig& base = cfg.base;
  base.interval_s = 60.0;
  base.tick_s = 1.0;
  base.warmup_intervals = 1;
  base.feature_window_s = 120.0;
  base.feature_timesteps = 16;
  base.session.engagement.catalog.videos_per_category = 60;
  base.compressor.epochs_per_fit = 1;
  base.grouping.k_min = 2;
  base.grouping.k_max = 8;
  base.grouping.ddqn.hidden = {32};
  base.grouping.kmeans.restarts = 2;
  base.demand.interval_s = base.interval_s;
  base.recommender.playlist_size = 24;

  switch (kind) {
    case ScenarioKind::kSteadyState:
    case ScenarioKind::kFlashCrowd:
    case ScenarioKind::kMobilityChurn:
      break;
    case ScenarioKind::kCatalogDrift:
      base.affinity_drift_rate = cfg.drift_rate;
      base.popularity_forgetting = cfg.drift_popularity_forgetting;
      break;
  }
  return cfg;
}

ScenarioResult run_scenario(const ScenarioConfig& config, ReportSink* sink) {
  DTMSV_EXPECTS(config.intervals > 0);

  FleetConfig fleet_config;
  fleet_config.base = config.base;
  fleet_config.cell_count = config.cell_count;
  fleet_config.total_users = config.total_users;
  fleet_config.seed = config.seed;
  SimulationFleet fleet(fleet_config);

  ScenarioResult result;
  result.kind = config.kind;
  result.reports.reserve(config.intervals);

  for (std::size_t i = 0; i < config.intervals; ++i) {
    if (config.kind == ScenarioKind::kFlashCrowd && i == config.surge_interval) {
      const auto surge = static_cast<std::size_t>(std::llround(
          config.surge_fraction * static_cast<double>(config.total_users)));
      if (surge > 0) {
        fleet.add_surge_shard(config.surge_cell, surge);
      }
    }
    if (config.kind == ScenarioKind::kMobilityChurn && i > 0) {
      result.handovers += fleet.churn(config.churn_fraction, sink);
    }
    result.reports.push_back(fleet.run_interval(sink));
    result.peak_users = std::max(result.peak_users, fleet.user_count());
  }

  std::vector<double> radio_actual;
  std::vector<double> radio_predicted;
  std::vector<double> compute_actual;
  std::vector<double> compute_predicted;
  for (const FleetReport& r : result.reports) {
    if (r.shard_radio_error.empty()) {
      continue;  // no shard had a prediction this interval
    }
    radio_actual.push_back(r.actual_radio_hz_total);
    radio_predicted.push_back(r.predicted_radio_hz_total);
    compute_actual.push_back(r.actual_compute_total);
    compute_predicted.push_back(r.predicted_compute_total);
  }
  result.radio_accuracy =
      util::prediction_accuracy(radio_actual, radio_predicted).value_or(0.0);
  result.compute_accuracy =
      util::volume_weighted_accuracy(compute_actual, compute_predicted)
          .value_or(0.0);
  return result;
}

}  // namespace dtmsv::core
