// Deterministic synthetic twin-report traffic for the serving mode: what
// the edge would receive from `user_count` handsets reporting channel
// quality at ~1 Hz, positions every few seconds, and finished views as they
// happen. Drives tools/dtmsv_serve.cpp and bench_serve; tests use it to
// overload a ServeLoop reproducibly.
//
// Everything is derived from per-user forked RNG streams, so the event
// stream for a given (config, catalog) is bit-identical across runs and
// machines and independent of how the caller slices time into generate()
// windows at whole-tick boundaries. The overload knob (set_rate_multiplier)
// scales every report rate — periods divide by the multiplier — which is
// how scenarios model a flash crowd saturating the ingestion queue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "behavior/preference.hpp"
#include "core/event_queue.hpp"
#include "twin/observations.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"
#include "video/catalog.hpp"
#include "video/dataset.hpp"

namespace dtmsv::core {

struct ServeWorkloadConfig {
  std::uint64_t seed = 7;
  std::size_t user_count = 240;
  /// Mean seconds between reports of each kind, at rate multiplier 1.
  double channel_period_s = 1.0;
  double location_period_s = 5.0;
  double watch_period_s = 18.0;
  /// Dirichlet concentration of each user's category taste.
  double affinity_concentration = 0.35;
  /// Engagement model for watch fractions (shared with the behaviour sim).
  video::DatasetConfig engagement{};
  /// Position bounds: users random-walk inside [0, extent_x] x [0, extent_y]
  /// (defaults match the default campus and twin::FeatureScaling).
  double extent_x = 1200.0;
  double extent_y = 1000.0;
};

class ServeWorkload {
 public:
  /// `catalog` must outlive the workload (watch reports sample video ids
  /// from it — use ServeLoop::catalog() so ids resolve on the serve side).
  ServeWorkload(const ServeWorkloadConfig& config, const video::Catalog& catalog);

  std::size_t user_count() const { return users_.size(); }
  double rate_multiplier() const { return rate_multiplier_; }
  /// Scales all report rates from now on (must be > 0). Takes effect for
  /// events scheduled after each user's next report of each kind, like a
  /// real traffic surge ramping in.
  void set_rate_multiplier(double multiplier);

  /// Appends every event with timestamp in [from, to) to `out`, in
  /// nondecreasing time order (ties broken by user id) — ready to feed to
  /// ServeLoop::offer. Call with contiguous windows ([0,10), [10,20), ...).
  void generate(util::SimTime from, util::SimTime to, std::vector<TwinEvent>& out);

 private:
  struct UserState {
    util::Rng rng;
    behavior::PreferenceVector affinity{};
    double snr_db = 15.0;
    double x = 0.0;
    double y = 0.0;
    double heading = 0.0;
    double next_channel = 0.0;
    double next_location = 0.0;
    double next_watch = 0.0;
  };

  ServeWorkloadConfig config_;
  const video::Catalog* catalog_;
  std::vector<UserState> users_;
  double rate_multiplier_ = 1.0;
};

}  // namespace dtmsv::core
