#include "core/feature_compressor.hpp"

#include <algorithm>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/pooling.hpp"
#include "util/error.hpp"

namespace dtmsv::core {

FeatureCompressor::FeatureCompressor(const CompressorConfig& config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  DTMSV_EXPECTS(config.channels > 0);
  DTMSV_EXPECTS(config.timesteps >= 8);
  DTMSV_EXPECTS(config.embedding_dim > 0);
  DTMSV_EXPECTS(config.batch_size > 0);

  encoder_ = std::make_unique<nn::Sequential>();
  encoder_->emplace<nn::Conv1D>(config.channels, config.conv1_filters,
                                /*kernel=*/5, rng_, /*stride=*/1, /*padding=*/2);
  encoder_->emplace<nn::ReLU>();
  encoder_->emplace<nn::MaxPool1D>(2);
  encoder_->emplace<nn::Conv1D>(config.conv1_filters, config.conv2_filters,
                                /*kernel=*/3, rng_, /*stride=*/1, /*padding=*/1);
  encoder_->emplace<nn::ReLU>();
  encoder_->emplace<nn::GlobalAvgPool1D>();
  encoder_->emplace<nn::Linear>(config.conv2_filters, config.embedding_dim, rng_);

  decoder_ = std::make_unique<nn::Sequential>();
  decoder_->emplace<nn::Linear>(config.embedding_dim, config.decoder_hidden, rng_);
  decoder_->emplace<nn::ReLU>();
  decoder_->emplace<nn::Linear>(config.decoder_hidden,
                                config.channels * config.timesteps, rng_);

  auto params = encoder_->parameters();
  for (auto& p : decoder_->parameters()) {
    params.push_back(p);
  }
  optimizer_ = std::make_unique<nn::Adam>(std::move(params), config.learning_rate);
}

nn::Tensor& FeatureCompressor::gather_batch(const twin::WindowBatch& windows,
                                            const std::size_t* indices,
                                            std::size_t begin, std::size_t end) {
  DTMSV_EXPECTS(begin < end && end <= windows.size());
  DTMSV_EXPECTS_MSG(windows.window_size() == input_size(),
                    "FeatureCompressor: window size mismatch");
  const std::size_t n = end - begin;
  if (batch_.rank() != 3 || batch_.dim(0) != n) {
    batch_ = nn::Tensor({n, config_.channels, config_.timesteps});
  }
  auto data = batch_.data();
  if (indices == nullptr) {
    // Contiguous fleet slice (the embed path): WindowBatch rows are
    // adjacent in the arena, so the whole batch stages as one bulk copy.
    const float* src = windows.data() + begin * windows.window_size();
    std::copy(src, src + n * windows.window_size(), data.begin());
    return batch_;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = windows.row(indices[begin + i]);
    std::copy(w.begin(), w.end(), data.begin() + static_cast<std::ptrdiff_t>(i * w.size()));
  }
  return batch_;
}

twin::WindowBatch FeatureCompressor::stage_windows(
    const std::vector<std::vector<float>>& windows) {
  DTMSV_EXPECTS(!windows.empty());
  staging_.resize(windows.size() * input_size());
  float* out = staging_.data();
  for (const auto& w : windows) {
    DTMSV_EXPECTS_MSG(w.size() == input_size(),
                      "FeatureCompressor: window size mismatch");
    out = std::copy(w.begin(), w.end(), out);
  }
  return twin::WindowBatch(staging_.data(), windows.size(), input_size());
}

float FeatureCompressor::fit(const std::vector<std::vector<float>>& windows) {
  return fit(stage_windows(windows));
}

clustering::Points FeatureCompressor::embed(
    const std::vector<std::vector<float>>& windows) {
  return embed(stage_windows(windows));
}

float FeatureCompressor::reconstruction_loss(
    const std::vector<std::vector<float>>& windows) {
  return reconstruction_loss(stage_windows(windows));
}

float FeatureCompressor::fit(const twin::WindowBatch& windows) {
  DTMSV_EXPECTS(!windows.empty());
  float last_epoch_loss = 0.0f;
  std::vector<std::size_t> order(windows.size());
  for (std::size_t epoch = 0; epoch < config_.epochs_per_fit; ++epoch) {
    // Shuffled minibatch order each epoch.
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    rng_.shuffle(order);

    float epoch_loss = 0.0f;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size(); start += config_.batch_size) {
      const std::size_t stop = std::min(start + config_.batch_size, order.size());
      const nn::Tensor& input = gather_batch(windows, order.data(), start, stop);
      const nn::Tensor target = input.reshaped({stop - start, input_size()});

      const nn::Tensor embedding = encoder_->forward(input);
      const nn::Tensor reconstruction = decoder_->forward(embedding);
      const auto loss = nn::mse_loss(reconstruction, target);

      encoder_->zero_grad();
      decoder_->zero_grad();
      const nn::Tensor grad_embedding = decoder_->backward(loss.grad);
      encoder_->backward(grad_embedding);
      optimizer_->clip_grad_norm(10.0);
      optimizer_->step();

      epoch_loss += loss.value;
      ++batches;
    }
    last_epoch_loss = batches > 0 ? epoch_loss / static_cast<float>(batches) : 0.0f;
  }
  return last_epoch_loss;
}

clustering::Points FeatureCompressor::embed(const twin::WindowBatch& windows) {
  DTMSV_EXPECTS(!windows.empty());
  const nn::Tensor& input = gather_batch(windows, nullptr, 0, windows.size());
  const nn::Tensor embedding = encoder_->forward(input);

  // Write straight into the flat point matrix: one allocation for the
  // whole embedding cloud instead of one per user.
  clustering::Points points(windows.size(), config_.embedding_dim);
  double* rows = points.data();
  const float* emb = embedding.data().data();
  for (std::size_t i = 0; i < windows.size() * config_.embedding_dim; ++i) {
    rows[i] = static_cast<double>(emb[i]);
  }
  return points;
}

float FeatureCompressor::reconstruction_loss(const twin::WindowBatch& windows) {
  DTMSV_EXPECTS(!windows.empty());
  const nn::Tensor& input = gather_batch(windows, nullptr, 0, windows.size());
  const nn::Tensor target = input.reshaped({windows.size(), input_size()});
  const nn::Tensor reconstruction = decoder_->forward(encoder_->forward(input));
  return nn::mse_loss(reconstruction, target).value;
}

}  // namespace dtmsv::core
