#include "core/serve.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "analysis/recommend.hpp"
#include "analysis/swiping.hpp"
#include "util/error.hpp"

namespace dtmsv::core {

// ------------------------------------------------------------- degradation

std::vector<DegradationLevel> DegradationPolicyConfig::default_ladder() {
  return {
      {"cnn_full", "cnn", /*full_extraction=*/true},
      {"cnn_incremental", "cnn", /*full_extraction=*/false},
      {"summary", "summary", /*full_extraction=*/false},
  };
}

DegradationPolicy::DegradationPolicy(DegradationPolicyConfig config)
    : config_(std::move(config)) {
  DTMSV_EXPECTS_MSG(!config_.ladder.empty(),
                    "DegradationPolicy: ladder must have at least one rung");
  DTMSV_EXPECTS_MSG(config_.step_down_after > 0 && config_.step_up_after > 0,
                    "DegradationPolicy: hysteresis counts must be positive");
}

std::optional<std::size_t> DegradationPolicy::record(bool deadline_hit) {
  if (deadline_hit) {
    consecutive_misses_ = 0;
    ++consecutive_hits_;
    if (level_ > 0 && consecutive_hits_ >= config_.step_up_after) {
      consecutive_hits_ = 0;
      --level_;
      return level_;
    }
    return std::nullopt;
  }
  consecutive_hits_ = 0;
  ++consecutive_misses_;
  if (level_ + 1 < config_.ladder.size() &&
      consecutive_misses_ >= config_.step_down_after) {
    consecutive_misses_ = 0;
    ++level_;
    return level_;
  }
  return std::nullopt;
}

// -------------------------------------------------------------- validation

void validate(const ServeConfig& config) {
  validate(config.scheme);
  DTMSV_EXPECTS_MSG(config.deadline_ms > 0.0,
                    "ServeConfig: deadline_ms must be positive");
  DTMSV_EXPECTS_MSG(config.queue_capacity > 0,
                    "ServeConfig: queue_capacity must be positive");
  DTMSV_EXPECTS_MSG(!config.degradation.ladder.empty(),
                    "ServeConfig: degradation ladder must have at least one rung");
  DTMSV_EXPECTS_MSG(config.degradation.step_down_after > 0 &&
                        config.degradation.step_up_after > 0,
                    "ServeConfig: degradation hysteresis counts must be positive");
  const StageRegistry& registry = StageRegistry::instance();
  for (const DegradationLevel& level : config.degradation.ladder) {
    if (!registry.has_feature(level.feature_stage)) {
      throw util::PreconditionError(
          "ServeConfig: ladder rung '" + level.name +
          "' names unregistered feature stage '" + level.feature_stage + "'");
    }
  }
}

double latency_percentile(const std::vector<double>& values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 100.0);
  // Nearest-rank: the smallest value with at least q% of the sample at or
  // below it.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

// -------------------------------------------------------------- serve loop

ServeLoop::ServeLoop(const ServeConfig& config, ServeClock& clock,
                     ReportSink* sink)
    : config_((validate(config), config)),
      clock_(&clock),
      sink_(sink),
      rng_(config.scheme.seed),
      catalog_(video::Catalog::generate(config.scheme.session.engagement.catalog,
                                        rng_)),
      content_(predict::ContentStats::from_catalog(catalog_)),
      twins_(std::make_unique<twin::TwinStore>(config.scheme.user_count)),
      queue_(config.queue_capacity),
      popularity_(config.scheme.popularity_forgetting),
      policy_(config.degradation),
      cluster_rng_(0),
      preference_dirty_(config.scheme.user_count, 0) {
  // Mirror the batch Simulation's RNG fork schedule for the stage streams:
  // the feature stage may draw from rng_.fork(6), the grouping stage from
  // rng_.fork(7), the clustering stream is fork(9) (see StageRegistry
  // docs). Every ladder rung shares one feature-stage fork source so the
  // ladder *length* does not change the grouping/demand streams.
  const StageRegistry& registry = StageRegistry::instance();
  util::Rng feature_fork_source = rng_.fork(6);
  SchemeConfig stage_config = config_.scheme;
  feature_stages_.reserve(config_.degradation.ladder.size());
  for (std::size_t i = 0; i < config_.degradation.ladder.size(); ++i) {
    const DegradationLevel& level = config_.degradation.ladder[i];
    stage_config.feature_stage = level.feature_stage;
    util::Rng rung_rng = feature_fork_source.fork(i);
    feature_stages_.push_back(
        registry.make_feature(level.feature_stage, stage_config, rung_rng));
  }
  grouping_stage_ = registry.make_grouping(grouping_stage_key(config_.scheme),
                                           config_.scheme, rng_);
  demand_stage_ = registry.make_demand(demand_stage_key(config_.scheme),
                                       config_.scheme, rng_);
  cluster_rng_ = rng_.fork(9);
}

void ServeLoop::offer(const TwinEvent& event) {
  DTMSV_EXPECTS_MSG(event.user < config_.scheme.user_count,
                    "ServeLoop: event user id out of range");
  queue_.push(event);
}

void ServeLoop::advance_to(util::SimTime t) {
  DTMSV_EXPECTS_MSG(t >= now_, "ServeLoop: event time must be monotonic");
  const double interval_s = config_.scheme.interval_s;
  while (true) {
    const util::SimTime boundary =
        static_cast<double>(interval_ + 1) * interval_s;
    if (boundary > t) {
      break;
    }
    queue_.drain_until(boundary, [this](const TwinEvent& e) { ingest(e); });
    fire_prediction(boundary);
  }
  queue_.drain_until(t, [this](const TwinEvent& e) { ingest(e); });
  now_ = t;
}

void ServeLoop::ingest(const TwinEvent& event) {
  const std::size_t u = event.user;
  twin::TwinColumnStore& columns = twins_->columns();
  switch (event.kind) {
    case TwinEvent::Kind::kChannel:
      columns.record_channel(u, event.time, event.channel);
      break;
    case TwinEvent::Kind::kLocation:
      columns.record_location(u, event.time, event.position);
      break;
    case TwinEvent::Kind::kWatch:
      columns.record_watch(u, event.time, event.watch);
      popularity_.observe(event.watch.video_id, event.watch.watch_seconds);
      preference_dirty_[u] = 1;
      break;
  }
  ++stats_.events_ingested;
}

void ServeLoop::report_drops() {
  const std::uint64_t dropped = queue_.stats().dropped;
  if (dropped == reported_drops_) {
    return;
  }
  const std::uint64_t fresh = dropped - reported_drops_;
  reported_drops_ = dropped;
  stats_.events_dropped += fresh;
  if (sink_ != nullptr) {
    DropEvent event;
    event.interval = interval_;
    event.dropped = fresh;
    event.queue_capacity = queue_.capacity();
    event.queue_size = queue_.size();
    sink_->on_drop(event);
  }
}

void ServeLoop::snapshot_preferences(util::SimTime at) {
  // The collector-side preference rows the batch loop records every
  // visibility period: one estimator snapshot per user that accumulated
  // watch evidence since the last one. Clean users are skipped so their
  // revision watermarks hold and incremental extraction can reuse their
  // cached feature rows.
  twin::TwinColumnStore& columns = twins_->columns();
  for (std::size_t u = 0; u < preference_dirty_.size(); ++u) {
    if (preference_dirty_[u] != 0) {
      columns.record_preference(u, at, columns.estimator(u).estimate());
      preference_dirty_[u] = 0;
    }
  }
}

void ServeLoop::fire_prediction(util::SimTime at) {
  // Surface sheds accumulated since the previous prediction first, so a
  // consumer replaying the NDJSON stream sees the overload before the
  // (possibly degraded) interval it affected.
  report_drops();
  snapshot_preferences(at);

  const std::size_t level = policy_.level();
  const DegradationLevel& rung = policy_.at(level);

  const double t0 = clock_->now_s();

  TwinSnapshot snapshot;
  snapshot.twins = twins_.get();
  snapshot.now = at;
  snapshot.window_s = config_.scheme.feature_window_s;
  snapshot.timesteps = config_.scheme.feature_timesteps;
  snapshot.scaling = config_.scaling;
  snapshot.arena = &arena_;
  snapshot.force_full = rung.full_extraction;
  const FeatureOutput features = feature_stages_[level]->extract(snapshot);

  EpochReport report;
  report.interval = interval_;
  report.has_prediction = true;
  report.grouped = true;
  report.reconstruction_loss = features.reconstruction_loss;

  const GroupingOutcome grouping =
      grouping_stage_->group(features.points, cluster_rng_);
  report.k = grouping.k;
  report.silhouette = grouping.silhouette;
  report.ddqn_epsilon = grouping.epsilon;

  // Group abstraction + demand prediction, mirroring the batch
  // Simulation::rebuild_groups wiring. Serve mode has no simulated ground
  // truth, so the actual_* fields stay zero and no bias feedback runs.
  std::vector<std::size_t> members;
  std::vector<const twin::UserDigitalTwin*> member_twins;
  for (std::size_t g = 0; g < grouping.k; ++g) {
    members.clear();
    member_twins.clear();
    for (std::size_t u = 0; u < grouping.assignment.size(); ++u) {
      if (grouping.assignment[u] == g) {
        members.push_back(u);
        member_twins.push_back(&twins_->twin(u));
      }
    }
    if (members.empty()) {
      continue;
    }

    const analysis::SwipingDistribution swiping = analysis::build_group_swiping(
        member_twins, at, config_.scheme.feature_window_s,
        config_.scheme.swiping_bins, config_.scheme.swiping_forgetting);
    const behavior::PreferenceVector preference =
        analysis::aggregate_group_preference(member_twins);
    const analysis::Recommendation recommendation = analysis::recommend(
        catalog_, popularity_, preference, config_.scheme.recommender);

    GroupDemandContext context;
    context.members = &member_twins;
    context.preference = &preference;
    context.swiping = &swiping;
    context.playlist_per_category = &recommendation.per_category_counts;
    context.content = &content_;
    context.now = at;
    const GroupDemandForecast forecast = demand_stage_->predict(context);

    GroupReport group_report;
    group_report.group_id = g;
    group_report.size = members.size();
    group_report.predicted_efficiency = forecast.efficiency;
    group_report.predicted_radio_hz = forecast.demand.radio_hz;
    group_report.predicted_compute_cycles = forecast.demand.compute_cycles;
    report.predicted_radio_hz_total += forecast.demand.radio_hz;
    report.predicted_compute_total += forecast.demand.compute_cycles;
    if (sink_ != nullptr) {
      sink_->on_group(group_report, interval_);
    }
  }

  const double t1 = clock_->now_s();
  const double latency_ms = (t1 - t0) * 1e3;
  const bool deadline_hit = latency_ms <= config_.deadline_ms;

  ++stats_.intervals;
  stats_.latencies_ms.push_back(latency_ms);
  if (!deadline_hit) {
    ++stats_.deadline_misses;
  }

  // Interval housekeeping (as in batch mode).
  twins_->decay_preferences();
  popularity_.decay();

  if (sink_ != nullptr) {
    sink_->on_interval(report);
  }

  if (const std::optional<std::size_t> to = policy_.record(deadline_hit)) {
    const bool recovering = *to < level;
    if (recovering) {
      ++stats_.steps_up;
    } else {
      ++stats_.steps_down;
    }
    if (sink_ != nullptr) {
      DegradationEvent event;
      event.interval = interval_;
      event.from_level = level;
      event.to_level = *to;
      event.from_name = rung.name;
      event.to_name = policy_.at(*to).name;
      event.latency_ms = latency_ms;
      event.deadline_ms = config_.deadline_ms;
      event.recovering = recovering;
      sink_->on_degradation(event);
    }
  }

  ++interval_;
}

}  // namespace dtmsv::core
