#include "core/json_sink.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/csv.hpp"

namespace dtmsv::core {

namespace {

void field(std::string& line, const char* key, const std::string& value) {
  line += line.empty() ? "{\"" : ",\"";
  line += key;
  line += "\":";
  line += value;
}

void field(std::string& line, const char* key, double value) {
  field(line, key, json_number(value));
}

void field(std::string& line, const char* key, std::size_t value) {
  field(line, key, std::to_string(value));
}

void field(std::string& line, const char* key, bool value) {
  field(line, key, std::string(value ? "true" : "false"));
}

}  // namespace

std::string json_string(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  return util::format_double(value);
}

JsonReportSink::JsonReportSink(std::ostream& out) : out_(out) {}

void JsonReportSink::on_group(const GroupReport& g, util::IntervalId interval) {
  std::string line;
  field(line, "type", json_string("group"));
  field(line, "interval", std::to_string(interval));
  field(line, "group_id", g.group_id);
  field(line, "size", g.size);
  field(line, "rung", g.rung);
  field(line, "predicted_efficiency", g.predicted_efficiency);
  field(line, "realized_efficiency", g.realized_efficiency);
  field(line, "predicted_radio_hz", g.predicted_radio_hz);
  field(line, "actual_radio_hz", g.actual_radio_hz);
  field(line, "predicted_compute_cycles", g.predicted_compute_cycles);
  field(line, "actual_compute_cycles", g.actual_compute_cycles);
  field(line, "unicast_radio_hz", g.unicast_radio_hz);
  field(line, "videos_played", g.videos_played);
  out_ << line << "}\n";
  ++group_records_;
}

void JsonReportSink::on_interval(const EpochReport& r) {
  std::string line;
  field(line, "type", json_string("interval"));
  field(line, "interval", std::to_string(r.interval));
  field(line, "grouped", r.grouped);
  field(line, "has_prediction", r.has_prediction);
  field(line, "k", r.k);
  field(line, "silhouette", r.silhouette);
  field(line, "ddqn_epsilon", r.ddqn_epsilon);
  field(line, "reconstruction_loss", r.reconstruction_loss);
  field(line, "predicted_radio_hz_total", r.predicted_radio_hz_total);
  field(line, "actual_radio_hz_total", r.actual_radio_hz_total);
  field(line, "predicted_compute_total", r.predicted_compute_total);
  field(line, "actual_compute_total", r.actual_compute_total);
  field(line, "unicast_radio_hz_total", r.unicast_radio_hz_total);
  field(line, "radio_error", r.radio_error);
  field(line, "compute_error", r.compute_error);
  out_ << line << "}\n";
  ++interval_records_;
}

void JsonReportSink::on_handover(const HandoverEvent& e) {
  std::string line;
  field(line, "type", json_string("handover"));
  field(line, "interval", std::to_string(e.interval));
  field(line, "shard_a", e.shard_a);
  field(line, "shard_b", e.shard_b);
  field(line, "slot_a", e.slot_a);
  field(line, "slot_b", e.slot_b);
  out_ << line << "}\n";
  ++handover_records_;
}

void JsonReportSink::on_degradation(const DegradationEvent& e) {
  std::string line;
  field(line, "type", json_string("degradation"));
  field(line, "interval", std::to_string(e.interval));
  field(line, "from_level", e.from_level);
  field(line, "to_level", e.to_level);
  field(line, "from_name", json_string(e.from_name));
  field(line, "to_name", json_string(e.to_name));
  field(line, "latency_ms", e.latency_ms);
  field(line, "deadline_ms", e.deadline_ms);
  field(line, "recovering", e.recovering);
  out_ << line << "}\n";
  ++degradation_records_;
}

void JsonReportSink::on_drop(const DropEvent& e) {
  std::string line;
  field(line, "type", json_string("drop"));
  field(line, "interval", std::to_string(e.interval));
  field(line, "dropped", std::to_string(e.dropped));
  field(line, "queue_capacity", e.queue_capacity);
  field(line, "queue_size", e.queue_size);
  out_ << line << "}\n";
  ++drop_records_;
}

void JsonReportSink::meta(
    const std::string& meta_type,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string line;
  field(line, "type", json_string(meta_type));
  for (const auto& [key, value] : fields) {
    field(line, key.c_str(), value);
  }
  out_ << line << "}\n";
  ++meta_records_;
}

}  // namespace dtmsv::core
