#include "core/serve_workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dtmsv::core {

namespace {

constexpr double kSnrMin = -5.0;
constexpr double kSnrMax = 35.0;
constexpr double kSnrStepDb = 0.8;   // per-report random-walk sigma
constexpr double kWalkSpeed = 1.4;   // pedestrian m/s

/// Synthetic SNR -> spectral efficiency map (Shannon with a 75% implementation
/// margin, clamped to the practical MCS range). The serve loop never sees the
/// radio simulator, so the workload provides its own plausible link adaptation.
double efficiency_from_snr(double snr_db) {
  const double snr_linear = std::pow(10.0, snr_db / 10.0);
  return std::clamp(0.75 * std::log2(1.0 + snr_linear), 0.05, 7.8);
}

}  // namespace

ServeWorkload::ServeWorkload(const ServeWorkloadConfig& config,
                             const video::Catalog& catalog)
    : config_(config), catalog_(&catalog) {
  DTMSV_EXPECTS_MSG(config.user_count > 0,
                    "ServeWorkload: user_count must be positive");
  DTMSV_EXPECTS_MSG(config.channel_period_s > 0.0 &&
                        config.location_period_s > 0.0 &&
                        config.watch_period_s > 0.0,
                    "ServeWorkload: report periods must be positive");
  DTMSV_EXPECTS_MSG(config.extent_x > 0.0 && config.extent_y > 0.0,
                    "ServeWorkload: walk extent must be positive");
  DTMSV_EXPECTS_MSG(catalog.size() > 0, "ServeWorkload: catalog is empty");

  util::Rng root(config.seed);
  users_.resize(config.user_count);
  for (std::size_t u = 0; u < config.user_count; ++u) {
    UserState& user = users_[u];
    user.rng = root.fork(u);
    user.affinity = behavior::sample_affinity(config.affinity_concentration,
                                              user.rng);
    user.snr_db = user.rng.uniform(5.0, 25.0);
    user.x = user.rng.uniform(0.0, config.extent_x);
    user.y = user.rng.uniform(0.0, config.extent_y);
    user.heading = user.rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    // Staggered first reports so the population does not tick in lockstep.
    user.next_channel = user.rng.uniform(0.0, config.channel_period_s);
    user.next_location = user.rng.uniform(0.0, config.location_period_s);
    user.next_watch = user.rng.exponential(1.0 / config.watch_period_s);
  }
}

void ServeWorkload::set_rate_multiplier(double multiplier) {
  DTMSV_EXPECTS_MSG(multiplier > 0.0,
                    "ServeWorkload: rate multiplier must be positive");
  rate_multiplier_ = multiplier;
}

void ServeWorkload::generate(util::SimTime from, util::SimTime to,
                             std::vector<TwinEvent>& out) {
  DTMSV_EXPECTS_MSG(to >= from, "ServeWorkload: generate window is reversed");
  const std::size_t first_new = out.size();
  const double m = rate_multiplier_;

  for (std::size_t u = 0; u < users_.size(); ++u) {
    UserState& user = users_[u];
    // Per-user 3-way merge of the report schedules, processed strictly in
    // time order so the RNG draw sequence is a function of the event stream
    // alone (not of how the caller slices time into windows).
    while (true) {
      double t = user.next_channel;
      TwinEvent::Kind kind = TwinEvent::Kind::kChannel;
      if (user.next_location < t) {
        t = user.next_location;
        kind = TwinEvent::Kind::kLocation;
      }
      if (user.next_watch < t) {
        t = user.next_watch;
        kind = TwinEvent::Kind::kWatch;
      }
      if (t >= to) {
        break;
      }

      TwinEvent event;
      event.user = static_cast<std::uint32_t>(u);
      event.time = t;
      event.kind = kind;
      switch (kind) {
        case TwinEvent::Kind::kChannel: {
          user.snr_db = std::clamp(user.snr_db + user.rng.normal(0.0, kSnrStepDb),
                                   kSnrMin, kSnrMax);
          event.channel.snr_db = user.snr_db;
          event.channel.efficiency_bps_hz = efficiency_from_snr(user.snr_db);
          event.channel.serving_bs = 0;
          user.next_channel = t + config_.channel_period_s / m;
          break;
        }
        case TwinEvent::Kind::kLocation: {
          user.heading += user.rng.normal(0.0, 0.6);
          const double step = kWalkSpeed * config_.location_period_s;
          user.x += step * std::cos(user.heading);
          user.y += step * std::sin(user.heading);
          // Reflect at the extent so the walk stays on campus.
          if (user.x < 0.0 || user.x > config_.extent_x) {
            user.x = std::clamp(user.x, 0.0, config_.extent_x);
            user.heading = 3.14159265358979323846 - user.heading;
          }
          if (user.y < 0.0 || user.y > config_.extent_y) {
            user.y = std::clamp(user.y, 0.0, config_.extent_y);
            user.heading = -user.heading;
          }
          event.position = {user.x, user.y};
          user.next_location = t + config_.location_period_s / m;
          break;
        }
        case TwinEvent::Kind::kWatch: {
          const std::size_t category_index = user.rng.categorical(
              {user.affinity.data(), user.affinity.size()});
          const auto category = static_cast<video::Category>(category_index);
          const video::Video& video =
              catalog_->sample_from_category(category, user.rng);
          const double fraction = video::sample_watch_fraction(
              user.affinity[category_index], config_.engagement, user.rng);
          event.watch.video_id = video.id;
          event.watch.category = video.category;
          event.watch.duration_s = video.duration_s;
          event.watch.watch_fraction = fraction;
          event.watch.watch_seconds = fraction * video.duration_s;
          event.watch.completed = fraction >= 0.995;
          user.next_watch = t + user.rng.exponential(m / config_.watch_period_s);
          break;
        }
      }
      if (t >= from) {
        out.push_back(event);
      }
    }
  }

  // Merge the per-user streams into one nondecreasing timeline; ties break
  // by user id then kind, so the queue order is fully deterministic.
  std::stable_sort(out.begin() + static_cast<std::ptrdiff_t>(first_new), out.end(),
                   [](const TwinEvent& a, const TwinEvent& b) {
                     if (a.time != b.time) {
                       return a.time < b.time;
                     }
                     if (a.user != b.user) {
                       return a.user < b.user;
                     }
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
}

}  // namespace dtmsv::core
