// The paper's scheme as a pluggable pipeline. Each reservation interval the
// scheme runs three typed stages over the digital-twin state:
//
//   FeatureStage   UDT windows -> per-user feature points
//                  (paper: 1D-CNN autoencoder bottleneck, key "cnn")
//   GroupingStage  feature points -> grouping number K + user assignment
//                  (paper: DDQN-empowered K-means++, key "ddqn")
//   DemandStage    abstracted group state -> next-interval radio+compute
//                  demand (paper: joint min-series channel forecast, "joint")
//
// Stages are selected by string key through the process-wide StageRegistry,
// so alternative backends (the ablation baselines here, or out-of-tree
// research variants) plug in without touching core::Simulation. The keys on
// SchemeConfig (feature_stage / grouping_stage / demand_stage) are the only
// selection mechanism; the pre-PR-3 enum aliases are gone (see
// simulation.hpp for the migration note).
//
// Report delivery is streaming: a ReportSink observes per-group and
// per-interval outcomes (plus fleet handovers and serve-mode degradation /
// drop events) as they are scored, so large fleets never materialize
// per-shard report vectors just to aggregate them.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "analysis/swiping.hpp"
#include "behavior/preference.hpp"
#include "clustering/kmeans.hpp"
#include "predict/demand.hpp"
#include "twin/arena.hpp"
#include "twin/udt.hpp"
#include "util/clock.hpp"
#include "video/catalog.hpp"

namespace dtmsv::twin {
class TwinStore;
}

namespace dtmsv::core {

struct SchemeConfig;  // core/simulation.hpp

// ------------------------------------------------------------------ reports

/// Per-group slice of an interval report.
struct GroupReport {
  std::size_t group_id = 0;
  std::size_t size = 0;
  std::size_t rung = 0;
  double predicted_efficiency = 0.0;
  double realized_efficiency = 0.0;
  double predicted_radio_hz = 0.0;
  double actual_radio_hz = 0.0;
  double predicted_compute_cycles = 0.0;
  double actual_compute_cycles = 0.0;
  /// Counterfactual: bandwidth the same viewing would have cost had every
  /// member received a private unicast stream at their own link adaptation
  /// (the paper's motivation for multicast).
  double unicast_radio_hz = 0.0;
  std::size_t videos_played = 0;
};

/// One interval's outcome.
struct EpochReport {
  util::IntervalId interval = 0;
  bool grouped = false;           // groups were active during this interval
  bool has_prediction = false;    // predictions existed for this interval
  std::size_t k = 0;              // grouping chosen *for the next* interval
  double silhouette = 0.0;
  double ddqn_epsilon = 0.0;
  double reconstruction_loss = 0.0;
  /// Per-group reports. Filled by the vector-returning run paths; empty in
  /// streaming mode, where groups arrive through ReportSink::on_group.
  std::vector<GroupReport> groups;
  double predicted_radio_hz_total = 0.0;
  double actual_radio_hz_total = 0.0;
  double predicted_compute_total = 0.0;
  double actual_compute_total = 0.0;
  double unicast_radio_hz_total = 0.0;
  /// |pred − actual| / actual on the radio total (0 when undefined).
  double radio_error = 0.0;
  double compute_error = 0.0;
};

// ---------------------------------------------------------- streaming sinks

/// One inter-cell handover executed by a fleet (both directions of a swap).
struct HandoverEvent {
  util::IntervalId interval = 0;  // fleet interval about to run
  std::size_t shard_a = 0;
  std::size_t shard_b = 0;
  std::size_t slot_a = 0;  // user slot handed over in shard_a
  std::size_t slot_b = 0;  // user slot handed over in shard_b
};

/// One serve-mode degradation-ladder transition (core/serve.hpp): the serve
/// loop swapped pipeline fidelity in response to the deadline outcome of the
/// interval that just fired.
struct DegradationEvent {
  util::IntervalId interval = 0;   // interval whose outcome triggered it
  std::size_t from_level = 0;      // ladder indices (0 = full fidelity)
  std::size_t to_level = 0;
  std::string from_name;           // DegradationLevel::name
  std::string to_name;
  double latency_ms = 0.0;         // the triggering prediction's latency
  double deadline_ms = 0.0;        // the budget it was measured against
  bool recovering = false;         // true = stepping back up the ladder
};

/// Serve-mode admission-control sheds, aggregated since the previous report
/// (one event per interval at most, so a sustained overload cannot flood
/// the sink with per-event records).
struct DropEvent {
  util::IntervalId interval = 0;
  std::uint64_t dropped = 0;       // events shed since the last DropEvent
  std::size_t queue_capacity = 0;
  std::size_t queue_size = 0;      // queue depth when the event was reported
};

/// Streaming observer of pipeline outcomes. All callbacks default to no-ops
/// so sinks override only what they consume.
///
/// Delivery contract: within one interval, every on_group call precedes the
/// on_interval call, and the EpochReport passed to on_interval carries an
/// empty `groups` vector (group data is not buffered twice). A fleet
/// delivers shards in fixed shard order after its parallel phase, so sink
/// output is deterministic for any thread count; on_handover fires once per
/// swap before the interval that first observes it.
class ReportSink {
 public:
  virtual ~ReportSink() = default;
  ReportSink() = default;

  virtual void on_group(const GroupReport& group, util::IntervalId interval) {
    (void)group;
    (void)interval;
  }
  virtual void on_interval(const EpochReport& report) { (void)report; }
  virtual void on_handover(const HandoverEvent& event) { (void)event; }
  virtual void on_degradation(const DegradationEvent& event) { (void)event; }
  virtual void on_drop(const DropEvent& event) { (void)event; }

 protected:
  // Copyable for derived value-semantic sinks (series accumulators);
  // protected so the polymorphic base can't be sliced through.
  ReportSink(const ReportSink&) = default;
  ReportSink& operator=(const ReportSink&) = default;
};

/// Convenience sink that retains everything it observes (tests, small runs).
/// Interval reports arrive with empty `groups`; the group stream is kept
/// separately in `groups`.
class CollectingSink final : public ReportSink {
 public:
  void on_group(const GroupReport& group, util::IntervalId interval) override {
    groups.push_back(group);
    group_intervals.push_back(interval);
  }
  void on_interval(const EpochReport& report) override { reports.push_back(report); }
  void on_handover(const HandoverEvent& event) override { handovers.push_back(event); }
  void on_degradation(const DegradationEvent& event) override {
    degradations.push_back(event);
  }
  void on_drop(const DropEvent& event) override { drops.push_back(event); }

  std::vector<EpochReport> reports;
  std::vector<GroupReport> groups;
  std::vector<util::IntervalId> group_intervals;
  std::vector<HandoverEvent> handovers;
  std::vector<DegradationEvent> degradations;
  std::vector<DropEvent> drops;
};

// ------------------------------------------------------------------- stages

/// Zero-copy view of the twin state a FeatureStage consumes: the live
/// TwinStore plus the window geometry and the pooled extraction arena the
/// owning Simulation provides. Valid only for the duration of the
/// extract() call; stages must not retain the pointers.
struct TwinSnapshot {
  const twin::TwinStore* twins = nullptr;
  util::SimTime now = 0.0;
  double window_s = 0.0;       // feature window length (SchemeConfig)
  std::size_t timesteps = 0;   // resampled window length (SchemeConfig)
  twin::FeatureScaling scaling{};  // campus extent + channel normalisation
  /// Pooled extraction buffers owned by the Simulation. The batch views
  /// below materialise into it incrementally (only users whose histories
  /// changed since the arena's last same-geometry extraction are
  /// re-extracted) and alias it: they stay valid until the next extraction
  /// using the same arena — copy rows out if a stage keeps them.
  twin::FeatureArena* arena = nullptr;
  /// Disables the arena's incremental cache for this extraction (every row
  /// re-extracted). The result is bit-identical either way; the serve
  /// loop's full-fidelity degradation rung sets it to model the cost of
  /// full re-extraction under load.
  bool force_full = false;

  /// All users' [kFeatureChannels x timesteps] windows, flat row-major.
  /// Requires `arena`; bit-identical to the per-twin feature_window rows.
  twin::WindowBatch feature_windows() const;
  /// All users' summary-feature rows, flat row-major. Requires `arena`.
  twin::SummaryBatch summary_features() const;
};

/// Copies a summary batch into an owning flat point set (one allocation) —
/// for grouping consumers that outlive the arena the batch aliases.
clustering::Points to_points(const twin::SummaryBatch& batch);

/// FeatureStage output: one feature point per user (row-major), plus the
/// training loss for stages that learn online (0 otherwise).
struct FeatureOutput {
  clustering::Points points;
  float reconstruction_loss = 0.0f;
};

/// Produces the per-user features the grouping stage clusters (ABL-CMP).
/// Stateful stages (the CNN autoencoder trains online) keep their state
/// across intervals; one instance serves one Simulation.
class FeatureStage {
 public:
  virtual ~FeatureStage() = default;
  FeatureStage() = default;
  FeatureStage(const FeatureStage&) = delete;
  FeatureStage& operator=(const FeatureStage&) = delete;

  virtual FeatureOutput extract(const TwinSnapshot& snapshot) = 0;
  virtual std::string name() const = 0;

  /// Stages with learned parameters participate in Simulation::save_models /
  /// load_models through these hooks.
  virtual bool has_learned_state() const { return false; }
  virtual void save_state(std::ostream& os) const { (void)os; }
  virtual void load_state(std::istream& is) { (void)is; }
};

/// One grouping decision: the chosen K and the per-user cluster assignment.
struct GroupingOutcome {
  std::size_t k = 0;
  std::vector<std::size_t> assignment;  // assignment[user] in [0, k)
  double silhouette = 0.0;
  double epsilon = 0.0;  // exploration rate for learning stages (0 otherwise)
};

/// Chooses the grouping number and clusters users (ABL-CLU). Learning
/// stages receive the demand-prediction error of the interval their previous
/// decision governed through report_outcome (the delayed reward).
class GroupingStage {
 public:
  virtual ~GroupingStage() = default;
  GroupingStage() = default;
  GroupingStage(const GroupingStage&) = delete;
  GroupingStage& operator=(const GroupingStage&) = delete;

  /// Requires non-empty features; `rng` is the simulation's clustering
  /// stream (consume deterministically).
  virtual GroupingOutcome group(const clustering::Points& features,
                                util::Rng& rng) = 0;
  /// Normalised demand-prediction error of the interval governed by the
  /// previous group() decision. Optional feedback; default no-op.
  virtual void report_outcome(double prediction_error) { (void)prediction_error; }
  virtual std::string name() const = 0;

  virtual bool has_learned_state() const { return false; }
  virtual void save_state(std::ostream& os) const { (void)os; }
  virtual void load_state(std::istream& is) { (void)is; }
};

/// Abstracted state of one multicast group, handed to the demand stage.
/// All pointers outlive the predict() call only.
struct GroupDemandContext {
  const std::vector<const twin::UserDigitalTwin*>* members = nullptr;
  const behavior::PreferenceVector* preference = nullptr;
  const analysis::SwipingDistribution* swiping = nullptr;
  /// Recommender quota per category for the next interval's playlist.
  const std::array<std::size_t, video::kCategoryCount>* playlist_per_category =
      nullptr;
  const predict::ContentStats* content = nullptr;
  util::SimTime now = 0.0;
};

/// DemandStage output: the group's channel-efficiency forecast and the
/// predicted next-interval resource demand.
struct GroupDemandForecast {
  double efficiency = 0.0;
  predict::ResourceDemand demand{};
};

/// Predicts one group's next-interval radio and computing demand from the
/// abstracted group information (ABL-PRED).
class DemandStage {
 public:
  virtual ~DemandStage() = default;
  DemandStage() = default;
  DemandStage(const DemandStage&) = delete;
  DemandStage& operator=(const DemandStage&) = delete;

  virtual GroupDemandForecast predict(const GroupDemandContext& context) = 0;
  virtual std::string name() const = 0;
};

// ----------------------------------------------------------------- registry

/// Process-wide, string-keyed factory registry for pipeline stages. New
/// backends register from any translation unit (see examples/custom_stage.cpp)
/// and become selectable through SchemeConfig::{feature,grouping,demand}_stage
/// without touching core.
///
/// Factories receive the full SchemeConfig (valid only during the call) and
/// the simulation's root RNG. Stages that need randomness must derive it
/// deterministically from that RNG; by convention the built-in feature stage
/// seeds from rng.fork(6) and the built-in grouping stage from rng.fork(7)
/// (Rng::fork advances the parent stream, so whether a stage draws is part
/// of the reproducible configuration). Registration and lookup are
/// thread-safe; registering a key twice throws util::RuntimeError, as does
/// looking up an unknown key (listing the known keys).
class StageRegistry {
 public:
  using FeatureFactory =
      std::function<std::unique_ptr<FeatureStage>(const SchemeConfig&, util::Rng&)>;
  using GroupingFactory =
      std::function<std::unique_ptr<GroupingStage>(const SchemeConfig&, util::Rng&)>;
  using DemandFactory =
      std::function<std::unique_ptr<DemandStage>(const SchemeConfig&, util::Rng&)>;

  /// The process-wide registry, with the built-in stages pre-registered:
  /// feature "cnn" | "raw" | "summary"; grouping "ddqn" | "fixed" | "elbow" |
  /// "random" | "silhouette"; demand "joint" | "last_value" | "ewma" |
  /// "linear_trend" | "mean".
  static StageRegistry& instance();

  void register_feature(const std::string& key, FeatureFactory factory);
  void register_grouping(const std::string& key, GroupingFactory factory);
  void register_demand(const std::string& key, DemandFactory factory);

  bool has_feature(const std::string& key) const;
  bool has_grouping(const std::string& key) const;
  bool has_demand(const std::string& key) const;

  std::unique_ptr<FeatureStage> make_feature(const std::string& key,
                                             const SchemeConfig& config,
                                             util::Rng& rng) const;
  std::unique_ptr<GroupingStage> make_grouping(const std::string& key,
                                               const SchemeConfig& config,
                                               util::Rng& rng) const;
  std::unique_ptr<DemandStage> make_demand(const std::string& key,
                                           const SchemeConfig& config,
                                           util::Rng& rng) const;

  /// Registered keys, sorted (diagnostics, bench sweeps).
  std::vector<std::string> feature_keys() const;
  std::vector<std::string> grouping_keys() const;
  std::vector<std::string> demand_keys() const;

  StageRegistry(const StageRegistry&) = delete;
  StageRegistry& operator=(const StageRegistry&) = delete;

 private:
  StageRegistry();
  ~StageRegistry();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Registry key the configuration selects (the SchemeConfig::*_stage
/// string, validated non-empty). Kept as the single lookup point so callers
/// never read the config fields directly.
std::string feature_stage_key(const SchemeConfig& config);
std::string grouping_stage_key(const SchemeConfig& config);
std::string demand_stage_key(const SchemeConfig& config);

// ------------------------------------------------------------ stage timings

/// Cumulative wall-time breakdown of the interval loop, attributing cost to
/// environment simulation vs. the three pipeline stages (bench ABL-INT
/// emits this into BENCH_micro_perf.json).
struct StageTimings {
  double simulate_s = 0.0;  // tick loop: mobility, channel, playback, UDTs
  double feature_s = 0.0;   // FeatureStage::extract
  double grouping_s = 0.0;  // GroupingStage::group
  double demand_s = 0.0;    // group abstraction + DemandStage::predict
  std::size_t intervals = 0;

  double pipeline_s() const { return feature_s + grouping_s + demand_s; }
  double total_s() const { return simulate_s + pipeline_s(); }
};

}  // namespace dtmsv::core
