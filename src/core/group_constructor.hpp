// The paper's two-step multicast group construction: "a double deep
// Q-network (DDQN) is first adopted to determine the grouping number by
// mining users' similarities. Then, the K-means++ algorithm is utilized to
// perform fast user clustering based on the determined grouping number."
//
// State: similarity statistics of the compressed embeddings (pairwise-
// distance histogram + dispersion + load + previous K).
// Action: grouping number K in [k_min, k_max].
// Reward: silhouette quality − K cost − demand-prediction error of the
// interval the decision governed (reported one interval later).
#pragma once

#include <optional>

#include "clustering/kmeans.hpp"
#include "clustering/selectors.hpp"
#include "rl/ddqn.hpp"

namespace dtmsv::core {

/// Group construction hyperparameters.
struct GroupConstructorConfig {
  std::size_t k_min = 2;
  std::size_t k_max = 12;
  std::size_t distance_histogram_bins = 16;
  /// Reward = silhouette_weight·silhouette − k_cost_weight·(K−Kmin)/(Kmax−Kmin)
  ///          − error_weight·prediction_error(previous interval).
  /// Reward balance: cluster cohesion is worth having, but the scheme's
  /// end goal is accurate demand prediction, so the (delayed) prediction
  /// error carries the largest weight — very coarse groupings (tiny K)
  /// produce few, huge multicast groups whose per-interval demand is
  /// small-sample noisy and poorly predictable.
  double silhouette_weight = 1.0;
  double k_cost_weight = 0.1;
  double error_weight = 3.0;
  /// Beyond this many users the reward's silhouette term is estimated from
  /// a sample of this size (exact below it), keeping the interval loop
  /// sub-quadratic at scale.
  std::size_t silhouette_sample_cap = clustering::kDefaultSilhouetteSampleCap;
  std::size_t train_steps_per_interval = 8;
  /// DDQN hyperparameters rescaled for interval-granularity decisions (one
  /// action per reservation interval, so exploration must decay over tens
  /// of decisions, not thousands). state_dim/action_count are filled in by
  /// the constructor.
  rl::DdqnConfig ddqn = interval_scale_ddqn();
  clustering::KMeansOptions kmeans{};

  static rl::DdqnConfig interval_scale_ddqn() {
    rl::DdqnConfig cfg;
    cfg.hidden = {64, 64};
    cfg.batch_size = 16;
    cfg.replay_capacity = 2048;
    cfg.min_replay_before_train = 16;
    cfg.target_sync_every = 25;
    cfg.epsilon_start = 1.0;
    cfg.epsilon_end = 0.05;
    cfg.epsilon_decay_steps = 60;
    return cfg;
  }
};

/// One grouping decision.
struct GroupingDecision {
  std::size_t k = 0;
  std::vector<std::size_t> assignment;
  clustering::Points centroids;
  double silhouette = 0.0;
  double epsilon = 0.0;         // exploration rate when the action was taken
  bool explored = false;        // decision made while replay was still cold
};

/// DDQN-empowered K-means++ group constructor with online learning across
/// reservation intervals.
class GroupConstructor {
 public:
  GroupConstructor(const GroupConstructorConfig& config, std::uint64_t seed);

  /// Chooses K for the given embeddings, clusters, learns from the previous
  /// decision, and returns the grouping. Requires non-empty embeddings.
  GroupingDecision construct(const clustering::Points& embeddings, util::Rng& rng);

  /// Reports the normalised demand-prediction error of the interval
  /// governed by the previous construct() decision (in [0, ~1]); feeds the
  /// delayed part of the reward. Optional — call before the next construct.
  void report_outcome(double prediction_error);

  /// State-vector dimensionality for the configured histogram size.
  static std::size_t state_dimension(const GroupConstructorConfig& config);

  const GroupConstructorConfig& config() const { return config_; }
  rl::DdqnAgent& agent() { return *agent_; }

  /// Encodes embeddings into the DDQN state (exposed for tests).
  std::vector<float> encode_state(const clustering::Points& embeddings,
                                  std::size_t previous_k) const;

 private:
  GroupConstructorConfig config_;
  std::unique_ptr<rl::DdqnAgent> agent_;

  struct Pending {
    std::vector<float> state;
    std::size_t action = 0;
    double silhouette = 0.0;
    double k_norm = 0.0;
  };
  std::optional<Pending> pending_;
  double last_reported_error_ = 0.0;
  std::size_t previous_k_ = 0;
};

}  // namespace dtmsv::core
