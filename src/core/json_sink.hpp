// Streaming NDJSON report sink: one JSON object per line per pipeline
// event, written as the event is scored — nothing is buffered, so a 10k-user
// fleet run streams to disk in O(1) memory exactly like the in-process
// accumulator sinks.
//
// Record schema (field order fixed; numbers carry full round-trip
// precision, so downstream aggregation reproduces the in-process doubles
// bit-for-bit — pinned by tests/json_sink_test.cpp):
//
//   {"type":"group","interval":I,"group_id":G,"size":N,"rung":R,
//    "predicted_efficiency":..,"realized_efficiency":..,
//    "predicted_radio_hz":..,"actual_radio_hz":..,
//    "predicted_compute_cycles":..,"actual_compute_cycles":..,
//    "unicast_radio_hz":..,"videos_played":N}
//
//   {"type":"interval","interval":I,"grouped":B,"has_prediction":B,"k":K,
//    "silhouette":..,"ddqn_epsilon":..,"reconstruction_loss":..,
//    "predicted_radio_hz_total":..,"actual_radio_hz_total":..,
//    "predicted_compute_total":..,"actual_compute_total":..,
//    "unicast_radio_hz_total":..,"radio_error":..,"compute_error":..}
//
//   {"type":"handover","interval":I,"shard_a":A,"shard_b":B,
//    "slot_a":SA,"slot_b":SB}
//
//   {"type":"degradation","interval":I,"from_level":L,"to_level":L,
//    "from_name":"..","to_name":"..","latency_ms":..,"deadline_ms":..,
//    "recovering":B}                           (serve mode, core/serve.hpp)
//
//   {"type":"drop","interval":I,"dropped":N,"queue_capacity":C,
//    "queue_size":S}                           (serve mode, core/serve.hpp)
//
// Fleet interval reports arrive once per shard (the ReportSink contract);
// consumers group records by "interval". meta() lets a driver prepend
// arbitrary context records ({"type":"run",...}) to the same stream.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"

namespace dtmsv::core {

class JsonReportSink final : public ReportSink {
 public:
  /// Streams onto `out` (not owned; must outlive the sink). The stream's
  /// failbit is left untouched — call good() / check the stream after the
  /// run for I/O errors.
  explicit JsonReportSink(std::ostream& out);

  void on_group(const GroupReport& group, util::IntervalId interval) override;
  void on_interval(const EpochReport& report) override;
  void on_handover(const HandoverEvent& event) override;
  void on_degradation(const DegradationEvent& event) override;
  void on_drop(const DropEvent& event) override;

  /// Writes one {"type":"meta_type", ...fields} record. Values must already
  /// be JSON literals (use json_string()/json_number() below); field order
  /// follows the vector.
  void meta(const std::string& meta_type,
            const std::vector<std::pair<std::string, std::string>>& fields);

  std::size_t group_records() const { return group_records_; }
  std::size_t interval_records() const { return interval_records_; }
  std::size_t handover_records() const { return handover_records_; }
  std::size_t degradation_records() const { return degradation_records_; }
  std::size_t drop_records() const { return drop_records_; }
  std::size_t record_count() const {
    return group_records_ + interval_records_ + handover_records_ +
           degradation_records_ + drop_records_ + meta_records_;
  }

 private:
  std::ostream& out_;
  std::size_t group_records_ = 0;
  std::size_t interval_records_ = 0;
  std::size_t handover_records_ = 0;
  std::size_t degradation_records_ = 0;
  std::size_t drop_records_ = 0;
  std::size_t meta_records_ = 0;
};

/// JSON string literal with the mandatory escapes (quote, backslash,
/// control characters).
std::string json_string(const std::string& value);
/// JSON number literal with full round-trip precision. Non-finite values
/// (invalid JSON) are emitted as null.
std::string json_number(double value);

}  // namespace dtmsv::core
